// Indexed local root-zone store — the §3 "load the root zone into a
// database" option, and the fast path the paper's §5.1 suggests beyond
// scanning the compressed file.
//
// Maps TLD label -> the RRsets a root referral for that TLD would carry
// (NS + glue + DS), so the on-demand local-root mode can answer "which
// servers handle .com?" in O(1) without polluting the resolver cache.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/rr.h"
#include "util/strings.h"
#include "zone/zone.h"

namespace rootless::resolver {

struct TldEntry {
  dns::RRset ns;                    // delegation NS RRset
  std::vector<dns::RRset> glue;     // A/AAAA for in-bailiwick nameservers
  std::vector<dns::RRset> ds;       // DS RRset(s), if the TLD is signed
};

class ZoneDb {
 public:
  ZoneDb() = default;
  explicit ZoneDb(const zone::Zone& root_zone) { Load(root_zone); }

  // (Re)builds the index from a root zone snapshot.
  void Load(const zone::Zone& root_zone);

  // Looks up a TLD label (without dot, any case; matching is ASCII
  // case-insensitive so a view straight out of dns::Name::tld_view() works
  // without building a temporary string). Returns nullptr for unknown TLDs
  // — the local equivalent of a root NXDOMAIN.
  const TldEntry* Lookup(std::string_view tld) const;

  std::size_t tld_count() const { return entries_.size(); }
  std::uint32_t serial() const { return serial_; }

  // Total RRsets indexed (NS + glue + DS across all TLDs).
  std::size_t rrset_count() const;

 private:
  std::unordered_map<std::string, TldEntry, util::CaseInsensitiveHash,
                     util::CaseInsensitiveEqual>
      entries_;
  std::uint32_t serial_ = 0;
};

}  // namespace rootless::resolver
