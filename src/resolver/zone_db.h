// Indexed local root-zone store — the §3 "load the root zone into a
// database" option, and the fast path the paper's §5.1 suggests beyond
// scanning the compressed file.
//
// The db is an index *over* an immutable zone::ZoneSnapshot, not a copy of
// it: each TLD entry holds borrowed views (NS + glue + DS) into the
// snapshot's arena, and the map is keyed by string_views into the
// snapshot-owned owner names. Loading a new snapshot rebuilds only the index
// (pointers), never the RRset data, and a fleet of resolvers can share one
// snapshot with per-resolver ZoneDb indexes.
#pragma once

#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/rr.h"
#include "util/strings.h"
#include "zone/zone.h"
#include "zone/zone_snapshot.h"

namespace rootless::resolver {

struct TldEntry {
  dns::RRsetView ns;                       // delegation NS RRset
  std::span<const dns::RRsetView> glue;    // A/AAAA for in-bailiwick servers
  std::span<const dns::RRsetView> ds;      // DS RRset(s), if the TLD is signed
};

class ZoneDb {
 public:
  ZoneDb() = default;
  explicit ZoneDb(zone::SnapshotPtr snapshot) { Load(std::move(snapshot)); }
  // Convenience for hand-built zones (tests): snapshots the zone first.
  explicit ZoneDb(const zone::Zone& root_zone) {
    Load(zone::ZoneSnapshot::Build(root_zone));
  }

  // (Re)builds the index over `snapshot`. The snapshot is retained (it backs
  // every view handed out); the previous one is released.
  void Load(zone::SnapshotPtr snapshot);

  // Looks up a TLD label (without dot, any case; matching is ASCII
  // case-insensitive so a view straight out of dns::Name::tld_view() works
  // without building a temporary string). Returns nullptr for unknown TLDs
  // — the local equivalent of a root NXDOMAIN.
  const TldEntry* Lookup(std::string_view tld) const;

  std::size_t tld_count() const { return entries_.size(); }
  std::uint32_t serial() const { return serial_; }

  // Total RRsets indexed (NS + glue + DS across all TLDs).
  std::size_t rrset_count() const { return entries_.size() + views_.size(); }

  // The snapshot backing the index (nullptr before the first Load).
  const zone::SnapshotPtr& snapshot() const { return snapshot_; }

 private:
  zone::SnapshotPtr snapshot_;
  // Flat pool of glue/DS views; TldEntry spans point into it.
  std::vector<dns::RRsetView> views_;
  // Keys are tld_view()s of snapshot-owned names — alive as long as
  // snapshot_ is.
  std::unordered_map<std::string_view, TldEntry, util::CaseInsensitiveHash,
                     util::CaseInsensitiveEqual>
      entries_;
  std::uint32_t serial_ = 0;
};

}  // namespace rootless::resolver
