#include "resolver/zone_db.h"

#include "util/strings.h"

namespace rootless::resolver {

using dns::Name;
using dns::RRsetView;
using dns::RRType;

void ZoneDb::Load(zone::SnapshotPtr snapshot) {
  snapshot_ = std::move(snapshot);
  entries_.clear();
  views_.clear();
  serial_ = snapshot_->Serial();

  // Phase 1: collect each delegation's views. views_ may reallocate while
  // growing, so entries record offsets and the spans are fixed up after.
  struct PendingEntry {
    RRsetView ns;
    std::size_t glue_offset = 0, glue_count = 0;
    std::size_t ds_offset = 0, ds_count = 0;
  };
  std::vector<PendingEntry> pending;
  const Name& apex = snapshot_->apex();
  snapshot_->ForEachRRset([&](const RRsetView& v) {
    if (v.type != RRType::kNS || *v.name == apex) return;
    PendingEntry entry;
    entry.ns = v;
    entry.glue_offset = views_.size();
    for (const auto& rd : v.rdatas) {
      const Name& host = std::get<dns::NsData>(rd).nameserver;
      if (auto a = snapshot_->Find(host, RRType::kA)) views_.push_back(*a);
      if (auto aaaa = snapshot_->Find(host, RRType::kAAAA)) {
        views_.push_back(*aaaa);
      }
    }
    entry.glue_count = views_.size() - entry.glue_offset;
    entry.ds_offset = views_.size();
    if (auto ds = snapshot_->Find(*v.name, RRType::kDS)) views_.push_back(*ds);
    entry.ds_count = views_.size() - entry.ds_offset;
    pending.push_back(entry);
  });

  // Phase 2: views_ is final; hand out spans and key by the snapshot-owned
  // name's TLD label.
  entries_.reserve(pending.size());
  for (const auto& p : pending) {
    entries_.emplace(
        p.ns.name->tld_view(),
        TldEntry{p.ns,
                 std::span<const RRsetView>(views_.data() + p.glue_offset,
                                            p.glue_count),
                 std::span<const RRsetView>(views_.data() + p.ds_offset,
                                            p.ds_count)});
  }
}

const TldEntry* ZoneDb::Lookup(std::string_view tld) const {
  auto it = entries_.find(tld);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

}  // namespace rootless::resolver
