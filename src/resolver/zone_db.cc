#include "resolver/zone_db.h"

#include "util/strings.h"

namespace rootless::resolver {

using dns::Name;
using dns::RRType;

void ZoneDb::Load(const zone::Zone& root_zone) {
  entries_.clear();
  serial_ = root_zone.Serial();
  for (const auto& child : root_zone.DelegatedChildren()) {
    TldEntry entry;
    const dns::RRset* ns = root_zone.Find(child, RRType::kNS);
    if (ns == nullptr) continue;
    entry.ns = *ns;
    for (const auto& rd : ns->rdatas) {
      const Name& host = std::get<dns::NsData>(rd).nameserver;
      if (const dns::RRset* a = root_zone.Find(host, RRType::kA)) {
        entry.glue.push_back(*a);
      }
      if (const dns::RRset* aaaa = root_zone.Find(host, RRType::kAAAA)) {
        entry.glue.push_back(*aaaa);
      }
    }
    if (const dns::RRset* ds = root_zone.Find(child, RRType::kDS)) {
      entry.ds.push_back(*ds);
    }
    entries_.emplace(child.tld(), std::move(entry));
  }
}

const TldEntry* ZoneDb::Lookup(std::string_view tld) const {
  auto it = entries_.find(tld);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::size_t ZoneDb::rrset_count() const {
  std::size_t count = 0;
  for (const auto& [tld, entry] : entries_) {
    count += 1 + entry.glue.size() + entry.ds.size();
  }
  return count;
}

}  // namespace rootless::resolver
