#include "resolver/recursive.h"

#include "util/check.h"
#include "util/strings.h"

namespace rootless::resolver {

using dns::Message;
using dns::Name;
using dns::RRset;
using dns::RRsetKey;
using dns::RRType;

std::string RootModeName(RootMode mode) {
  switch (mode) {
    case RootMode::kRootServers: return "root-servers";
    case RootMode::kCachePreload: return "cache-preload";
    case RootMode::kOnDemandZoneFile: return "on-demand-zone";
    case RootMode::kLoopbackAuth: return "loopback-auth";
  }
  return "unknown";
}

RecursiveResolver::RecursiveResolver(sim::Simulator& sim,
                                     sim::Network& network, Options options)
    : sim_(sim),
      network_(network),
      config_(std::move(options.config)),
      location_(options.location),
      cache_(config_.cache_capacity, options.registry),
      selector_(config_.seed ^ 0x5E1EC7),
      rng_(config_.seed) {
  node_ = network_.AddNode(
      [this](const sim::Datagram& d) { HandleDatagram(d); });
  if (options.topology != nullptr) {
    options.topology->PlaceNode(node_, location_);
  }
  obs::Registry& reg =
      options.registry ? *options.registry : obs::Registry::Default();
  const obs::Labels labels{reg.NextInstance("resolver"), "", ""};
  c_.resolutions = reg.counter("resolver.resolutions", labels);
  c_.answered_from_cache = reg.counter("resolver.answered_from_cache", labels);
  c_.root_transactions = reg.counter("resolver.root_transactions", labels);
  c_.local_root_lookups = reg.counter("resolver.local_root_lookups", labels);
  c_.tld_transactions = reg.counter("resolver.tld_transactions", labels);
  c_.full_qname_exposures =
      reg.counter("resolver.full_qname_exposures", labels);
  c_.handshakes = reg.counter("resolver.handshakes", labels);
  c_.nxdomain = reg.counter("resolver.nxdomain", labels);
  c_.negative_hits = reg.counter("resolver.negative_hits", labels);
  c_.manipulation_detected =
      reg.counter("resolver.manipulation_detected", labels);
  c_.timeouts = reg.counter("resolver.timeouts", labels);
  c_.failures = reg.counter("resolver.failures", labels);
  c_.retries = reg.counter("resolver.retries", labels);
  c_.glueless_referrals =
      reg.counter("resolver.glueless_referrals", labels);
  c_.chase_queries = reg.counter("resolver.chase_queries", labels);
  latency_us_ = reg.histogram("resolver.resolution_latency_us", labels);
  attempts_per_success_ =
      reg.histogram("resolver.attempts_per_success", labels);
}

void RecursiveResolver::SetLocalZone(zone::SnapshotPtr root_zone) {
  db_.Load(std::move(root_zone));
  if (config_.mode == RootMode::kCachePreload) {
    const sim::SimTime now = sim_.now();
    db_.snapshot()->ForEachRRset(
        [&](const dns::RRsetView& rrset) { cache_.Put(rrset, now); });
  }
}

void RecursiveResolver::Resolve(const Name& qname, RRType qtype,
                                const ResolveCallback& cb) {
  ResolveImpl(qname, qtype, cb, /*is_chase=*/false);
}

void RecursiveResolver::ResolveImpl(const Name& qname, RRType qtype,
                                    const ResolveCallback& cb, bool is_chase) {
  c_.resolutions.Inc();
  // Lifecycle span: query → answer. Synchronous paths (cache hit, negative
  // hit) close it immediately; async paths park it in the Pending node.
  const obs::SpanId span =
      ROOTLESS_SPAN_START(sim_.tracer(), "resolve", obs::kNoSpan);

  // Fast path: the answer itself is cached. Completes synchronously with no
  // transaction state — no id, no Pending node, no callback copy. The scratch
  // vector (and its one retained element) is recycled across hits, so in
  // steady state answering from cache allocates nothing: copy-assigning the
  // RRset reuses the previous hit's rdata capacity.
  if (const RRset* hit = cache_.Get(qname, qtype, sim_.now())) {
    c_.answered_from_cache.Inc();
    ROOTLESS_SPAN_INSTANT(sim_.tracer(), "cache-hit", span);
    ROOTLESS_SPAN_END(sim_.tracer(), span);
    ResolutionResult result;
    result.rcode = dns::RCode::kNoError;
    result.answers = std::move(answer_scratch_);
    result.answers.resize(1);
    result.answers.front() = *hit;
    if (cb) cb(result);
    answer_scratch_ = std::move(result.answers);
    return;
  }

  // Negative cache: a TLD recently proven nonexistent.
  if (config_.negative_cache && NegativeCached(qname.tld_view())) {
    c_.negative_hits.Inc();
    c_.nxdomain.Inc();
    ROOTLESS_SPAN_INSTANT(sim_.tracer(), "negative-hit", span);
    ROOTLESS_SPAN_END(sim_.tracer(), span);
    ResolutionResult result;
    result.rcode = dns::RCode::kNXDomain;
    if (cb) cb(result);
    return;
  }

  const std::uint16_t id = next_id_;
  // Skip 0 and ids still in flight.
  do {
    next_id_ = static_cast<std::uint16_t>(next_id_ + 1);
    if (next_id_ == 0) next_id_ = 1;
  } while (pending_.count(next_id_) > 0);

  Pending pending;
  pending.qname = qname;
  pending.qtype = qtype;
  pending.callback = cb;
  pending.start = sim_.now();
  pending.retries_left =
      config_.retry ? config_.retry->max_attempts - 1 : config_.max_retries;
  pending.is_chase = is_chase;
  pending.span = span;
  auto [it, inserted] = pending_.emplace(id, std::move(pending));
  StartResolution(id, it->second);
}

void RecursiveResolver::StartResolution(std::uint16_t id, Pending& pending) {
  // Referral path: do we know the TLD's servers?
  if (ReferralCached(pending.qname)) {
    AskTld(id);
    return;
  }
  AskRoot(id);
}

bool RecursiveResolver::NegativeCached(std::string_view tld) const {
  auto it = negative_.find(tld);
  return it != negative_.end() && it->second > sim_.now();
}

void RecursiveResolver::CacheNegative(
    std::string_view tld,
    const std::vector<dns::ResourceRecord>& authority) {
  if (!config_.negative_cache) return;
  // RFC 2308: negative TTL = min(SOA.minimum, SOA TTL), capped.
  sim::SimTime ttl = config_.max_negative_ttl;
  for (const auto& rr : authority) {
    if (rr.type != RRType::kSOA) continue;
    const auto& soa = std::get<dns::SoaData>(rr.rdata);
    ttl = std::min<sim::SimTime>(
        config_.max_negative_ttl,
        static_cast<sim::SimTime>(std::min(soa.minimum, rr.ttl)) *
            sim::kSecond);
    break;
  }
  const sim::SimTime until = sim_.now() + ttl;
  auto it = negative_.find(tld);
  if (it != negative_.end()) {
    it->second = until;
  } else {
    negative_.emplace(std::string(tld), until);
  }
}

void RecursiveResolver::RetryAfterBadResponse(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  if (pending.retries_left <= 0) {
    c_.failures.Inc();
    Finish(id, dns::RCode::kServFail, {}, true);
    return;
  }
  --pending.retries_left;
  ReissueAfterBackoff(id);
}

void RecursiveResolver::ReissueAfterBackoff(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  ++pending.attempt;
  c_.retries.Inc();
  const sim::SimTime backoff =
      config_.retry ? sim::JitteredBackoff(*config_.retry, pending.attempt,
                                           rng_)
                    : 0;
  if (backoff == 0) {
    ReissueNow(id);
    return;
  }
  // Invalidate the expired attempt's timeout while we wait out the backoff;
  // a late response arriving in the window still completes the resolution
  // (which erases the Pending node and strands this event).
  pending.generation = next_generation_++;
  const std::uint64_t generation = pending.generation;
  sim_.Schedule(backoff, [this, id, generation]() {
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.generation != generation) return;
    ReissueNow(id);
  });
}

void RecursiveResolver::ReissueNow(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  if (pending.stage == Pending::Stage::kRoot) {
    if (config_.mode == RootMode::kRootServers) {
      // Fail over to another letter.
      pending.root_letter = selector_.PickRetryLetter(pending.root_letter);
    }
    AskRoot(id);
  } else {
    AskTld(id);
  }
}

bool RecursiveResolver::ReferralCached(const Name& qname) {
  if (qname.is_root()) return false;
  return cache_.Get(qname.SuffixView(1), RRType::kNS, sim_.now()) != nullptr;
}

void RecursiveResolver::AskRoot(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  pending.stage = Pending::Stage::kRoot;
  pending.used_root = true;
  switch (config_.mode) {
    case RootMode::kRootServers:
    case RootMode::kLoopbackAuth:
      AskRootServers(id);
      return;
    case RootMode::kCachePreload:
    case RootMode::kOnDemandZoneFile:
      AskLocalStore(id);
      return;
  }
}

void RecursiveResolver::AskRootServers(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  ROOTLESS_SPAN_END(sim_.tracer(), pending.stage_span);
  pending.stage_span =
      ROOTLESS_SPAN_START(sim_.tracer(), "root", pending.span);
  sim::NodeId target = 0;
  if (config_.mode == RootMode::kLoopbackAuth) {
    ROOTLESS_CHECK(has_loopback_);
    target = loopback_;
  } else {
    ROOTLESS_CHECK(fleet_ != nullptr);
    pending.root_letter = selector_.PickLetter();
    // BGP decides which instance of the letter this resolver reaches — the
    // topology's catchment model, keyed by our seed, not ideal-nearest.
    target = fleet_->CatchmentInstanceFor(pending.root_letter, location_,
                                          config_.seed);
  }

  // QNAME minimization sends only the TLD (as an NS query) to the root.
  Name question_name = pending.qname;
  RRType question_type = pending.qtype;
  if (config_.qname_minimization && pending.qname.label_count() > 1) {
    question_name = pending.qname.Suffix(1);
    question_type = RRType::kNS;
  }
  if (question_name.label_count() > 1) c_.full_qname_exposures.Inc();
  const Message query = MakeQuery(id, question_name, question_type);
  ++pending.transactions;
  c_.root_transactions.Inc();
  pending.last_send = sim_.now();
  SendDnsQuery(target, query);
  ArmTimeout(id);
}

void RecursiveResolver::AskLocalStore(std::uint16_t id) {
  // Consulting the local store costs db_lookup_latency (zero-ish for the
  // preloaded cache, configurable for the on-demand DB).
  c_.local_root_lookups.Inc();
  {
    Pending& pending = pending_.at(id);
    ROOTLESS_SPAN_END(sim_.tracer(), pending.stage_span);
    pending.stage_span =
        ROOTLESS_SPAN_START(sim_.tracer(), "local-root", pending.span);
  }
  const sim::SimTime cost = config_.mode == RootMode::kOnDemandZoneFile
                                ? config_.db_lookup_latency
                                : 0;
  sim_.Schedule(cost, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Pending& pending = it->second;
    const std::string_view tld = pending.qname.tld_view();
    const TldEntry* entry = db_.Lookup(tld);
    if (entry == nullptr) {
      // Local equivalent of a root NXDOMAIN.
      c_.nxdomain.Inc();
      std::optional<dns::RRsetView> soa;
      if (db_.snapshot() != nullptr) soa = db_.snapshot()->soa();
      if (soa.has_value()) {
        CacheNegative(tld, soa->Materialize().ToRecords());
      } else {
        CacheNegative(tld, {});
      }
      Finish(id, dns::RCode::kNXDomain, {});
      return;
    }
    const sim::SimTime now = sim_.now();
    cache_.Put(entry->ns, now);
    for (const auto& g : entry->glue) cache_.Put(g, now);
    for (const auto& d : entry->ds) cache_.Put(d, now);
    AskTld(id);
  });
}

bool RecursiveResolver::TldNodeFor(const Name& qname, sim::NodeId& node,
                                   bool& extra_hop) {
  ROOTLESS_CHECK(farm_ != nullptr);
  extra_hop = false;
  if (qname.is_root()) return false;

  // Prefer a glue address from the cached referral.
  const RRset* ns = cache_.Get(qname.SuffixView(1), RRType::kNS, sim_.now());
  if (ns != nullptr) {
    for (const auto& rd : ns->rdatas) {
      const Name& host = std::get<dns::NsData>(rd).nameserver;
      const RRset* a = cache_.Get(host, RRType::kA, sim_.now());
      if (a == nullptr || a->rdatas.empty()) continue;
      const auto& addr = std::get<dns::AData>(a->rdatas.front()).address;
      if (farm_->FindByAddress(addr, node)) return true;
    }
  }
  // No usable glue: the nameserver names are out-of-bailiwick. Resolving
  // them is an extra transaction (modelled as one extra RTT to the farm).
  if (farm_->FindTldNode(qname.tld_view(), node)) {
    extra_hop = true;
    return true;
  }
  return false;
}

void RecursiveResolver::AskTld(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  pending.stage = Pending::Stage::kTld;
  ROOTLESS_SPAN_END(sim_.tracer(), pending.stage_span);
  pending.stage_span = ROOTLESS_SPAN_START(sim_.tracer(), "tld", pending.span);

  sim::NodeId target = 0;
  bool extra_hop = false;
  if (!TldNodeFor(pending.qname, target, extra_hop)) {
    c_.failures.Inc();
    Finish(id, dns::RCode::kServFail, {}, true);
    return;
  }
  const Message query = MakeQuery(id, pending.qname, pending.qtype);
  ++pending.transactions;
  c_.tld_transactions.Inc();
  sim::SimTime extra_delay = 0;
  if (extra_hop) {
    // One extra round trip to resolve the out-of-bailiwick NS name first.
    ++pending.transactions;
    extra_delay = 2 * network_.LatencyBetween(node_, target);
  }
  SendDnsQuery(target, query, extra_delay);
  ArmTimeout(id);
}

void RecursiveResolver::SendDnsQuery(sim::NodeId target,
                                     const Message& query,
                                     sim::SimTime extra_delay) {
  sim::SimTime delay = extra_delay;
  if (config_.encrypted_transport && sessions_.insert(target).second) {
    // TCP + TLS session establishment: two round trips before the query.
    c_.handshakes.Inc();
    delay += 4 * network_.LatencyBetween(node_, target);
  }
  auto wire = dns::EncodeMessage(query, 1232);
  if (delay == 0) {
    network_.Send(node_, target, std::move(wire));
    return;
  }
  sim_.Schedule(delay, [this, target, wire = std::move(wire)]() {
    network_.Send(node_, target, wire);
  });
}

void RecursiveResolver::ArmTimeout(std::uint16_t id) {
  Pending& pending = pending_.at(id);
  pending.generation = next_generation_++;
  const std::uint64_t generation = pending.generation;
  const sim::SimTime timeout =
      config_.retry ? config_.retry->attempt_timeout : config_.query_timeout;
  sim_.Schedule(timeout,
                [this, id, generation]() { HandleTimeout(id, generation); });
}

void RecursiveResolver::HandleTimeout(std::uint16_t id,
                                      std::uint64_t generation) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.generation != generation) return;
  Pending& pending = it->second;
  c_.timeouts.Inc();
  if (pending.stage == Pending::Stage::kRoot &&
      config_.mode == RootMode::kRootServers) {
    selector_.ReportTimeout(pending.root_letter);
  }
  if (pending.retries_left <= 0) {
    c_.failures.Inc();
    Finish(id, dns::RCode::kServFail, {}, true);
    return;
  }
  --pending.retries_left;
  ReissueAfterBackoff(id);
}

void RecursiveResolver::HandleDatagram(const sim::Datagram& datagram) {
  auto response = dns::DecodeMessage(datagram.payload);
  if (!response.ok() || !response->header.qr) return;
  const std::uint16_t id = response->header.id;
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late or duplicate response
  Pending& pending = it->second;
  // Invalidate the armed timeout.
  pending.generation = next_generation_++;

  if (pending.stage == Pending::Stage::kRoot) {
    HandleRootResponse(id, pending, *response);
  } else {
    HandleTldResponse(id, pending, *response);
  }
}

void RecursiveResolver::CacheRecords(
    const std::vector<dns::ResourceRecord>& records) {
  const sim::SimTime now = sim_.now();
  for (const auto& rrset : GroupIntoRRsets(records)) {
    cache_.Put(rrset, now);
  }
}

void RecursiveResolver::HandleRootResponse(std::uint16_t id, Pending& pending,
                                           const Message& response) {
  if (config_.mode == RootMode::kRootServers) {
    const sim::SimTime rtt = sim_.now() - pending.last_send;
    selector_.ReportRtt(pending.root_letter, rtt);
  }
  if (response.header.rcode == dns::RCode::kNXDomain) {
    // Bogus TLD. With DNSSEC validation on, the denial must be *proven*
    // (covering NSEC + valid RRSIG) before it is believed — the defence
    // against the root-manipulation attack of Sec 4.
    if (config_.validate_denials && has_trust_) {
      auto denial = crypto::ValidateDenial(
          pending.qname, GroupIntoRRsets(response.authority), trust_dnskey_,
          trust_store_, config_.validation_now);
      if (!denial.ok()) {
        c_.manipulation_detected.Inc();
        RetryAfterBadResponse(id);
        return;
      }
    }
    c_.nxdomain.Inc();
    CacheNegative(pending.qname.tld_view(), response.authority);
    Finish(id, dns::RCode::kNXDomain, {});
    return;
  }
  if (response.header.rcode != dns::RCode::kNoError) {
    c_.failures.Inc();
    Finish(id, dns::RCode::kServFail, {}, true);
    return;
  }
  // Referral: cache authority (NS/DS) + additional (glue). With QNAME
  // minimization the NS data may arrive in the answer section.
  CacheRecords(response.authority);
  CacheRecords(response.additional);
  CacheRecords(response.answers);
  if (!ReferralCached(pending.qname)) {
    // The root answered NOERROR but gave us nothing usable (e.g. NODATA for
    // a TLD with no delegation).
    c_.failures.Inc();
    Finish(id, dns::RCode::kServFail, {}, true);
    return;
  }
  AskTld(id);
}

void RecursiveResolver::HandleTldResponse(std::uint16_t id, Pending& pending,
                                          const Message& response) {
  if (response.header.rcode == dns::RCode::kNXDomain) {
    c_.nxdomain.Inc();
    Finish(id, dns::RCode::kNXDomain, {});
    return;
  }
  if (response.header.rcode != dns::RCode::kNoError ||
      response.answers.empty()) {
    // NXNSAttack surface: a NOERROR answer with nothing but glueless NS
    // authority is a referral we cannot follow directly. With chasing
    // enabled, issue fire-and-forget A lookups for the NS targets — each
    // one a fresh root (or local-root) transaction, which is exactly the
    // amplification the attack monetizes. Chases never chase (is_chase).
    std::vector<Name> chase;
    if (config_.max_glueless_chase > 0 && !pending.is_chase &&
        response.header.rcode == dns::RCode::kNoError) {
      for (const auto& rr : response.authority) {
        if (rr.type != RRType::kNS) continue;
        if (chase.size() >=
            static_cast<std::size_t>(config_.max_glueless_chase)) {
          break;
        }
        chase.push_back(std::get<dns::NsData>(rr.rdata).nameserver);
      }
      if (!chase.empty()) c_.glueless_referrals.Inc();
    }
    c_.failures.Inc();
    // Finish erases the Pending node (invalidating `pending`); the chases
    // are issued after it, as fresh resolutions.
    Finish(id, dns::RCode::kServFail, {}, true);
    for (const auto& host : chase) {
      c_.chase_queries.Inc();
      ResolveImpl(host, RRType::kA, nullptr, /*is_chase=*/true);
    }
    return;
  }
  CacheRecords(response.answers);
  // Collect the RRsets matching the question.
  std::vector<RRset> answers;
  for (const auto& rrset : GroupIntoRRsets(response.answers)) {
    if (rrset.name == pending.qname && rrset.type == pending.qtype) {
      answers.push_back(rrset);
    }
  }
  (void)pending;
  Finish(id, dns::RCode::kNoError, std::move(answers));
}

void RecursiveResolver::Finish(std::uint16_t id, dns::RCode rcode,
                               std::vector<RRset> answers, bool failed) {
  auto it = pending_.find(id);
  ROOTLESS_CHECK(it != pending_.end());
  Pending pending = std::move(it->second);
  pending_.erase(it);
  ROOTLESS_SPAN_END(sim_.tracer(), pending.stage_span);
  ROOTLESS_SPAN_END(sim_.tracer(), pending.span);

  ResolutionResult result;
  result.rcode = rcode;
  result.answers = std::move(answers);
  result.latency = sim_.now() - pending.start;
  latency_us_.Record(static_cast<std::uint64_t>(result.latency));
  if (!failed) {
    attempts_per_success_.Record(static_cast<std::uint64_t>(pending.attempt));
  }
  result.transactions = pending.transactions;
  result.used_root = pending.used_root;
  result.failed = failed;
  if (pending.callback) pending.callback(result);
  // Recycle the answers buffer for the cache-hit fast path (which resizes it
  // to a single element before use, so leftover contents don't matter).
  if (result.answers.capacity() > answer_scratch_.capacity()) {
    answer_scratch_ = std::move(result.answers);
  }
}

}  // namespace rootless::resolver
