// Recursive resolver over the simulated network.
//
// Implements the paper's four bootstrap configurations:
//   kRootServers     — classic: root hints + anycast root fleet + RTT-based
//                      root selection (the baseline being argued against).
//   kCachePreload    — §3 option 1: read the whole root zone into the cache.
//   kOnDemandZoneFile— §3 option 2: consult a local root-zone store whenever
//                      a root query would have been sent (ZoneDb lookup with
//                      a configurable access latency).
//   kLoopbackAuth    — §3 option 3 / RFC 7706: a local authoritative root
//                      instance reached over loopback.
//
// Resolution is asynchronous: Resolve() returns immediately and the callback
// fires when the simulated lookup completes (including retries/timeouts).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "crypto/dnssec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/pool_allocator.h"
#include "util/strings.h"
#include "dns/message.h"
#include "resolver/cache.h"
#include "resolver/root_selector.h"
#include "resolver/zone_db.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "sim/network.h"
#include "sim/retry.h"
#include "sim/simulator.h"
#include "topo/geo.h"
#include "topo/topology.h"

namespace rootless::resolver {

enum class RootMode {
  kRootServers,
  kCachePreload,
  kOnDemandZoneFile,
  kLoopbackAuth,
};

std::string RootModeName(RootMode mode);

struct ResolverConfig {
  RootMode mode = RootMode::kRootServers;
  // QNAME minimization (RFC 7816): send only the TLD to the root.
  bool qname_minimization = false;
  sim::SimTime query_timeout = 2 * sim::kSecond;
  int max_retries = 3;
  std::size_t cache_capacity = 0;  // RRsets; 0 = unlimited
  // Local-store access latency for kOnDemandZoneFile (an indexed DB; the
  // paper's naive compressed-file scan would be ~37 ms).
  sim::SimTime db_lookup_latency = 200;  // 200 us
  // RFC 2308 negative caching of NXDOMAIN (bogus-TLD) answers.
  bool negative_cache = true;
  sim::SimTime max_negative_ttl = 3600 * sim::kSecond;
  // Encrypted transport (DoT/DoH-style): the first query to each server
  // pays a connection+TLS handshake (2 extra RTTs); later queries reuse the
  // session. The paper's Sec 4 contrasts encrypting root transactions with
  // eliminating them.
  bool encrypted_transport = false;
  // DNSSEC: validate NXDOMAIN denials from the root against the trust
  // anchor installed via SetTrustAnchor (requires a signed root zone with
  // an NSEC chain). Spoofed denials then count as manipulation and are
  // retried instead of believed.
  bool validate_denials = false;
  std::uint32_t validation_now = 1000;  // unix time for RRSIG windows
  std::uint64_t seed = 1;
  // NXNSAttack surface (Afek et al., PAPERS.md): when a TLD answer is an
  // unusable glueless referral (NOERROR, no answers, NS authority without
  // glue), chase up to this many of the referral's NS target names with
  // fire-and-forget A lookups — the behaviour that lets one malicious
  // delegation fan a single query into `fanout` fresh root lookups. 0
  // (default) keeps the historical behaviour bit-for-bit: the referral is
  // just a SERVFAIL.
  int max_glueless_chase = 0;
  // Optional shared retry policy (sim/retry.h). When set, it supersedes
  // query_timeout/max_retries: each attempt gets attempt_timeout, the
  // attempt budget is max_attempts, and re-asks after a timeout or bad
  // response wait out the policy's (jittered) exponential backoff instead
  // of firing immediately. Unset preserves the historical immediate-retry
  // behavior bit-for-bit.
  std::optional<sim::RetryPolicy> retry = std::nullopt;
};

struct ResolutionResult {
  dns::RCode rcode = dns::RCode::kServFail;
  std::vector<dns::RRset> answers;
  sim::SimTime latency = 0;
  int transactions = 0;   // network round trips issued
  bool used_root = false; // a root transaction (or local equivalent) occurred
  bool failed = false;    // retries exhausted
};

// Snapshot view of the resolver's registry-backed counters (module
// "resolver"); assembled by stats(), which existing call sites keep using.
struct ResolverStats {
  std::uint64_t resolutions = 0;
  std::uint64_t answered_from_cache = 0;
  std::uint64_t root_transactions = 0;       // packets to root servers
  std::uint64_t local_root_lookups = 0;      // local-zone consultations
  std::uint64_t tld_transactions = 0;
  // Privacy accounting (Sec 4): root queries that exposed more of the qname
  // than the TLD the root can act on (QNAME minimization avoids these;
  // local-root modes never expose anything).
  std::uint64_t full_qname_exposures = 0;
  std::uint64_t handshakes = 0;  // encrypted-transport session setups
  std::uint64_t nxdomain = 0;
  std::uint64_t negative_hits = 0;          // NXDOMAIN answered from cache
  std::uint64_t manipulation_detected = 0;  // denials failing validation
  std::uint64_t timeouts = 0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;  // re-asks after timeout/bad response
  // NXNS accounting: unusable glueless referrals seen, and the NS-target
  // chase lookups they spawned (see ResolverConfig::max_glueless_chase).
  std::uint64_t glueless_referrals = 0;
  std::uint64_t chase_queries = 0;
};

class RecursiveResolver {
 public:
  using ResolveCallback = std::function<void(const ResolutionResult&)>;

  // Aggregate options (designated-initializer friendly).
  struct Options {
    ResolverConfig config;
    topo::GeoPoint location;
    obs::Registry* registry = nullptr;
    // When set, the resolver registers its own node at `location` in the
    // topology (replacing the old external SetLocation call) — the same
    // facade whose catchment model routes its classic root queries.
    topo::Topology* topology = nullptr;
  };

  RecursiveResolver(sim::Simulator& sim, sim::Network& network,
                    Options options);

  sim::NodeId node() const { return node_; }
  const topo::GeoPoint& location() const { return location_; }

  // --- wiring ---------------------------------------------------------
  // kRootServers mode: the anycast fleet to query.
  void SetRootFleet(const rootsrv::RootServerFleet* fleet) { fleet_ = fleet; }
  // All modes: the TLD servers referrals point at.
  void SetTldFarm(const rootsrv::TldFarm* farm) { farm_ = farm; }
  // Local-root modes: installs/updates the local root zone copy as an
  // immutable snapshot — the same SnapshotPtr a RefreshDaemon fetches and a
  // whole fleet can share. Swapping is atomic: the ZoneDb index is rebuilt
  // over the new snapshot (pointers only, no RRset copies); preload mode
  // additionally loads every RRset into the cache.
  void SetLocalZone(zone::SnapshotPtr root_zone);
  // kLoopbackAuth: node of the local root instance (an AuthServer whose
  // location equals this resolver's).
  void SetLoopbackNode(sim::NodeId node) {
    loopback_ = node;
    has_loopback_ = true;
  }
  // Trust anchor for validate_denials (the resolver's copy of the root
  // DNSKEY; the KeyStore plays the public-key math, see crypto/dnssec.h).
  void SetTrustAnchor(dns::DnskeyData dnskey, crypto::KeyStore store) {
    trust_dnskey_ = std::move(dnskey);
    trust_store_ = std::move(store);
    has_trust_ = true;
  }

  // --- operation ------------------------------------------------------
  void Resolve(const dns::Name& qname, dns::RRType qtype,
               const ResolveCallback& cb);

  DnsCache& cache() { return cache_; }
  const DnsCache& cache() const { return cache_; }
  // Snapshot of the registry-backed counters.
  ResolverStats stats() const {
    return ResolverStats{
        c_.resolutions.value(),       c_.answered_from_cache.value(),
        c_.root_transactions.value(), c_.local_root_lookups.value(),
        c_.tld_transactions.value(),  c_.full_qname_exposures.value(),
        c_.handshakes.value(),        c_.nxdomain.value(),
        c_.negative_hits.value(),     c_.manipulation_detected.value(),
        c_.timeouts.value(),          c_.failures.value(),
        c_.retries.value(),           c_.glueless_referrals.value(),
        c_.chase_queries.value()};
  }
  const RootSelector& root_selector() const { return selector_; }
  const ResolverConfig& config() const { return config_; }
  const ZoneDb& zone_db() const { return db_; }

 private:
  struct Pending {
    dns::Name qname;
    dns::RRType qtype = dns::RRType::kA;
    ResolveCallback callback;
    sim::SimTime start = 0;
    int transactions = 0;
    bool used_root = false;
    // Spawned by a glueless-referral chase; never chases further (the loop
    // guard that keeps NXNS amplification one level deep on our side).
    bool is_chase = false;
    // In-flight transaction bookkeeping.
    enum class Stage { kRoot, kTld } stage = Stage::kRoot;
    char root_letter = 0;
    int retries_left = 0;
    int attempt = 1;  // 1-based attempt number (for backoff + histogram)
    sim::SimTime last_send = 0;
    std::uint64_t generation = 0;  // invalidates stale timeout events
    // Resolution-lifecycle trace spans (kNoSpan when the sim has no tracer):
    // `span` covers query → answer, `stage_span` the current root/TLD leg.
    obs::SpanId span = obs::kNoSpan;
    obs::SpanId stage_span = obs::kNoSpan;
  };

  // Resolve() body; `is_chase` marks fire-and-forget NS-target lookups.
  void ResolveImpl(const dns::Name& qname, dns::RRType qtype,
                   const ResolveCallback& cb, bool is_chase);
  void StartResolution(std::uint16_t id, Pending& pending);
  // Consults the configured root source for the TLD referral.
  void AskRoot(std::uint16_t id);
  void AskRootServers(std::uint16_t id);
  void AskLocalStore(std::uint16_t id);
  // Queries the TLD server once referral data is cached.
  void AskTld(std::uint16_t id);
  // Referral data for qname's TLD is in cache? (NS + usable address)
  bool ReferralCached(const dns::Name& qname);

  void HandleDatagram(const sim::Datagram& datagram);
  void HandleRootResponse(std::uint16_t id, Pending& pending,
                          const dns::Message& response);
  void HandleTldResponse(std::uint16_t id, Pending& pending,
                         const dns::Message& response);
  void HandleTimeout(std::uint16_t id, std::uint64_t generation);
  void ArmTimeout(std::uint16_t id);

  void Finish(std::uint16_t id, dns::RCode rcode,
              std::vector<dns::RRset> answers, bool failed = false);
  void CacheRecords(const std::vector<dns::ResourceRecord>& records);
  // Negative cache (RFC 2308), keyed by TLD label (case-insensitive;
  // lookups take views straight out of the qname).
  bool NegativeCached(std::string_view tld) const;
  void CacheNegative(std::string_view tld,
                     const std::vector<dns::ResourceRecord>& authority);
  // Retry or fail after a bad (unvalidatable) response.
  void RetryAfterBadResponse(std::uint16_t id);
  // Re-issues the current stage's query: immediately without a retry
  // policy, after the policy's jittered backoff with one.
  void ReissueAfterBackoff(std::uint16_t id);
  void ReissueNow(std::uint16_t id);
  // Sends a query datagram, modelling the encrypted-transport handshake on
  // first contact with a server and any extra pre-send delay.
  void SendDnsQuery(sim::NodeId target, const dns::Message& query,
                    sim::SimTime extra_delay = 0);

  // Picks the network node for the current TLD target; false if the TLD's
  // servers cannot be located (treated as SERVFAIL).
  bool TldNodeFor(const dns::Name& qname, sim::NodeId& node, bool& extra_hop);

  sim::Simulator& sim_;
  sim::Network& network_;
  ResolverConfig config_;
  topo::GeoPoint location_;
  sim::NodeId node_;

  const rootsrv::RootServerFleet* fleet_ = nullptr;
  const rootsrv::TldFarm* farm_ = nullptr;
  sim::NodeId loopback_ = 0;
  bool has_loopback_ = false;
  dns::DnskeyData trust_dnskey_;
  crypto::KeyStore trust_store_;
  bool has_trust_ = false;
  std::unordered_map<std::string, sim::SimTime, util::CaseInsensitiveHash,
                     util::CaseInsensitiveEqual>
      negative_;
  std::unordered_set<sim::NodeId> sessions_;  // encrypted sessions

  DnsCache cache_;
  ZoneDb db_;
  RootSelector selector_;
  util::Rng rng_;
  // Pre-resolved registry handles (module "resolver", one instance label per
  // resolver): a stats bump is one 64-bit add through a pointer.
  struct Counters {
    obs::Counter resolutions;
    obs::Counter answered_from_cache;
    obs::Counter root_transactions;
    obs::Counter local_root_lookups;
    obs::Counter tld_transactions;
    obs::Counter full_qname_exposures;
    obs::Counter handshakes;
    obs::Counter nxdomain;
    obs::Counter negative_hits;
    obs::Counter manipulation_detected;
    obs::Counter timeouts;
    obs::Counter failures;
    obs::Counter retries;
    obs::Counter glueless_referrals;
    obs::Counter chase_queries;
  };
  Counters c_;
  // Attempts consumed by each resolution that completed (cache hits and
  // other synchronous answers are not recorded).
  obs::Histogram attempts_per_success_;
  // Latency distribution of resolutions that left the resolver (cache and
  // negative hits complete synchronously at latency 0 and are counted, not
  // recorded, so the fast path stays allocation- and histogram-free).
  obs::Histogram latency_us_;

  // One node alloc/free per resolution without the pool; with it the node
  // comes back from a free list (see util/pool_allocator.h).
  std::unordered_map<std::uint16_t, Pending, std::hash<std::uint16_t>,
                     std::equal_to<std::uint16_t>,
                     util::PoolAllocator<std::pair<const std::uint16_t,
                                                   Pending>>>
      pending_;
  std::uint16_t next_id_ = 1;
  std::uint64_t next_generation_ = 1;
  // Capacity-recycled buffer for the cache-hit fast path (see Finish).
  std::vector<dns::RRset> answer_scratch_;
};

}  // namespace rootless::resolver
