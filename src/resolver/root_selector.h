// Root nameserver selection — the piece of resolver complexity the paper's
// §4 says disappears under the proposal.
//
// Models the BIND-style strategy: keep a smoothed RTT per root letter,
// usually query the lowest-SRTT letter, but keep probing others so the
// estimates stay fresh; on timeout, penalize the letter and fail over.
#pragma once

#include <array>
#include <cstdint>

#include "sim/simulator.h"
#include "topo/deployment.h"
#include "util/rng.h"

namespace rootless::resolver {

class RootSelector {
 public:
  explicit RootSelector(std::uint64_t seed, double explore_probability = 0.05)
      : rng_(seed), explore_probability_(explore_probability) {}

  // Picks a letter to query: unprobed letters first (round-robin), then the
  // best SRTT with occasional exploration.
  char PickLetter();

  // Picks a letter different from `avoid` (retry path).
  char PickRetryLetter(char avoid);

  // Feedback.
  void ReportRtt(char letter, sim::SimTime rtt);
  void ReportTimeout(char letter);

  sim::SimTime srtt(char letter) const {
    return srtt_[topo::IndexForLetter(letter)];
  }
  bool probed(char letter) const {
    return probed_[topo::IndexForLetter(letter)];
  }

 private:
  char BestLetter() const;

  util::Rng rng_;
  double explore_probability_;
  std::array<sim::SimTime, topo::kRootLetterCount> srtt_{};
  std::array<bool, topo::kRootLetterCount> probed_{};
  int next_probe_ = 0;
};

}  // namespace rootless::resolver
