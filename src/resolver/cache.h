// Recursive resolver cache: RRsets with absolute expiry, LRU eviction under
// a capacity bound, and the statistics the paper's cache-capacity argument
// (§4, §5.1) turns on.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "dns/rr.h"
#include "sim/simulator.h"

namespace rootless::resolver {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expired = 0;    // lookups that found only a stale entry
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  // capacity evictions (LRU)

  double hit_rate() const {
    const std::uint64_t total = hits + misses + expired;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class DnsCache {
 public:
  // capacity = maximum number of RRsets held (0 = unlimited).
  explicit DnsCache(std::size_t capacity = 0) : capacity_(capacity) {}

  // Looks up an unexpired RRset, refreshing its LRU position. Returns
  // nullptr on miss/expiry (expired entries are erased).
  const dns::RRset* Get(const dns::RRsetKey& key, sim::SimTime now);

  // Inserts or replaces; expiry = now + ttl seconds.
  void Put(const dns::RRset& rrset, sim::SimTime now);

  // Inserts with an explicit expiry (used by zone preloading).
  void PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                     sim::SimTime now);

  // Drops expired entries eagerly; returns how many were removed.
  std::size_t PurgeExpired(sim::SimTime now);

  bool Contains(const dns::RRsetKey& key, sim::SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }
  void Clear();

  // Number of cached RRsets whose owner is a TLD (single non-root label) —
  // the §5.1 "fraction of TLDs already cached" measurement.
  std::size_t TldRRsetCount() const;

 private:
  struct Entry {
    dns::RRset rrset;
    sim::SimTime expiry;
    std::list<dns::RRsetKey>::iterator lru_it;
  };

  void Touch(Entry& entry, const dns::RRsetKey& key);
  void EvictIfNeeded();

  std::size_t capacity_;
  std::unordered_map<dns::RRsetKey, Entry, dns::RRsetKeyHash> entries_;
  std::list<dns::RRsetKey> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace rootless::resolver
