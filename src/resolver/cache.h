// Recursive resolver cache: RRsets with absolute expiry, LRU eviction under
// a capacity bound, and the statistics the paper's cache-capacity argument
// (§4, §5.1) turns on.
//
// Storage is a flat-hash layout: entries live in one contiguous slot array
// (the key is the RRset's own name/type/class — no separate key copy), and a
// SwissTable-style control-byte index (util/flat_hash.h) maps hashes to slot
// numbers, probed 16 at a time with SIMD. The LRU chain is index-linked
// (uint32 prev/next inside the slot), so Get/Put touch no pointers and the
// whole hot path is a handful of cache lines. Expired entries are reclaimed
// lazily: lookups erase what they touch, and every Put advances a small
// roving sweep over the LRU chain so a quiescent cache cannot pin an
// unbounded amount of dead data. Erased slots go on a free list with their
// rdata buffers intact; at capacity a Put reuses the evicted victim's slot
// directly, so steady-state churn performs no allocation at all.
#pragma once

#include <cstdint>
#include <vector>

#include "dns/rr.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/flat_hash.h"

namespace rootless::resolver {

// Snapshot view of the cache's registry-backed counters (module
// "resolver.cache"). The counters themselves live in the obs::Registry; this
// struct is what stats() assembles for callers, so existing call sites and
// tests keep reading plain fields.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expired = 0;    // lookups that found only a stale entry
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  // capacity evictions (LRU)
  std::uint64_t swept = 0;      // stale entries removed by the lazy sweep

  double hit_rate() const {
    const std::uint64_t total = hits + misses + expired;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class DnsCache {
 public:
  // capacity = maximum number of RRsets held (0 = unlimited). Counters
  // register in `registry` (default: obs::Registry::Default()) under
  // "resolver.cache.*" with an auto-assigned instance label. A nonzero
  // capacity pre-sizes both the slot array and the hash index, so a bounded
  // cache never rehashes for growth.
  explicit DnsCache(std::size_t capacity = 0,
                    obs::Registry* registry = nullptr);

  // Looks up an unexpired RRset, refreshing its LRU position. Returns
  // nullptr on miss/expiry (expired entries are erased).
  const dns::RRset* Get(const dns::RRsetKey& key, sim::SimTime now);
  // Heterogeneous probe: same semantics, no RRsetKey (and thus Name) copy.
  const dns::RRset* Get(const dns::Name& name, dns::RRType type,
                        sim::SimTime now);
  // Borrowed-owner probe (e.g. Name::SuffixView): the negative path of the
  // resolver's referral check runs with no Name copy at all.
  const dns::RRset* Get(const dns::NameView& name, dns::RRType type,
                        sim::SimTime now);

  // Inserts or replaces; expiry = now + ttl seconds.
  void Put(const dns::RRset& rrset, sim::SimTime now);
  // Same, from a borrowed view (e.g. a zone::ZoneSnapshot arena): the cache
  // owns its entries, so the view is deep-copied exactly once, straight into
  // the slot — no intermediate RRset.
  void Put(const dns::RRsetView& rrset, sim::SimTime now);

  // Inserts with an explicit expiry (used by zone preloading).
  void PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                     sim::SimTime now);
  void PutWithExpiry(const dns::RRsetView& rrset, sim::SimTime expiry,
                     sim::SimTime now);

  // Drops expired entries eagerly; returns how many were removed.
  std::size_t PurgeExpired(sim::SimTime now);

  bool Contains(const dns::RRsetKey& key, sim::SimTime now) const;

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  // Snapshot of the registry-backed counters (cheap: six slot reads).
  CacheStats stats() const {
    return CacheStats{hits_.value(),       misses_.value(),
                      expired_.value(),    insertions_.value(),
                      evictions_.value(),  swept_.value()};
  }
  void ResetStats() {
    hits_.Reset();
    misses_.Reset();
    expired_.Reset();
    insertions_.Reset();
    evictions_.Reset();
    swept_.Reset();
  }
  void Clear();

  // Number of cached RRsets whose owner is a TLD (single non-root label) —
  // the §5.1 "fraction of TLDs already cached" measurement.
  std::size_t TldRRsetCount() const;

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Slot {
    // The entry's key is (rrset.name, rrset.type, rrset.rrclass); `hash` is
    // its RRsetKeyHash value, kept so index probes confirm candidates with
    // one integer compare and rehashes never touch the Name.
    dns::RRset rrset;
    sim::SimTime expiry = 0;
    std::uint64_t hash = 0;
    std::uint32_t lru_prev = kNil;  // toward the head (more recent)
    std::uint32_t lru_next = kNil;  // toward the tail (less recent)
    bool live = false;
  };

  // Shared lookup body for key and key-view probes (instantiated in the .cc).
  template <typename KeyLike>
  const dns::RRset* GetImpl(const KeyLike& key, sim::SimTime now);

  // Shared insert body for owning RRsets and borrowed RRsetViews.
  template <typename SetLike>
  void PutImpl(const SetLike& rrset, sim::SimTime expiry, sim::SimTime now);

  // Index probe for `key` hashing to `hash`; kNil if absent.
  template <typename KeyLike>
  std::uint32_t FindSlot(std::uint64_t hash, const KeyLike& key) const;

  void PushFront(std::uint32_t s);
  void Unlink(std::uint32_t s);
  void MoveToFront(std::uint32_t s);
  // Unlinks, removes from the index, and free-lists the slot (rdata buffers
  // are kept for reuse).
  void EraseSlot(std::uint32_t s);
  void EvictIfNeeded();
  // Advances the roving expiry sweep by a constant number of entries.
  void SweepStep(sim::SimTime now);

  std::size_t capacity_;
  util::FlatHashIndex index_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // dead slot numbers, reused LIFO
  std::uint32_t lru_head_ = kNil;    // most recent
  std::uint32_t lru_tail_ = kNil;    // least recent
  std::uint32_t sweep_cursor_ = kNil;
  // Pre-resolved registry handles: a stats bump on the hot path is one
  // 64-bit add through the handle's pointer.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter expired_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter swept_;
};

}  // namespace rootless::resolver
