// Recursive resolver cache: RRsets with absolute expiry, LRU eviction under
// a capacity bound, and the statistics the paper's cache-capacity argument
// (§4, §5.1) turns on.
//
// The LRU list is intrusive: the prev/next links live inside the map entry,
// so Get/Put cost a single hash probe and zero allocations beyond the map
// node itself (the old std::list kept a second heap node per entry and a
// second key copy). Expired entries are reclaimed lazily: lookups erase what
// they touch, and every Put advances a small roving sweep over the LRU chain
// so a quiescent cache cannot pin an unbounded amount of dead data.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "dns/rr.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "util/pool_allocator.h"

namespace rootless::resolver {

// Snapshot view of the cache's registry-backed counters (module
// "resolver.cache"). The counters themselves live in the obs::Registry; this
// struct is what stats() assembles for callers, so existing call sites and
// tests keep reading plain fields.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expired = 0;    // lookups that found only a stale entry
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;  // capacity evictions (LRU)
  std::uint64_t swept = 0;      // stale entries removed by the lazy sweep

  double hit_rate() const {
    const std::uint64_t total = hits + misses + expired;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class DnsCache {
 public:
  // capacity = maximum number of RRsets held (0 = unlimited). Counters
  // register in `registry` (default: obs::Registry::Default()) under
  // "resolver.cache.*" with an auto-assigned instance label.
  explicit DnsCache(std::size_t capacity = 0,
                    obs::Registry* registry = nullptr);

  // Looks up an unexpired RRset, refreshing its LRU position. Returns
  // nullptr on miss/expiry (expired entries are erased).
  const dns::RRset* Get(const dns::RRsetKey& key, sim::SimTime now);
  // Heterogeneous probe: same semantics, no RRsetKey (and thus Name) copy.
  const dns::RRset* Get(const dns::Name& name, dns::RRType type,
                        sim::SimTime now);

  // Inserts or replaces; expiry = now + ttl seconds.
  void Put(const dns::RRset& rrset, sim::SimTime now);
  // Same, from a borrowed view (e.g. a zone::ZoneSnapshot arena): the cache
  // owns its entries, so the view is deep-copied exactly once, straight into
  // the map node — no intermediate RRset.
  void Put(const dns::RRsetView& rrset, sim::SimTime now);

  // Inserts with an explicit expiry (used by zone preloading).
  void PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                     sim::SimTime now);
  void PutWithExpiry(const dns::RRsetView& rrset, sim::SimTime expiry,
                     sim::SimTime now);

  // Drops expired entries eagerly; returns how many were removed.
  std::size_t PurgeExpired(sim::SimTime now);

  bool Contains(const dns::RRsetKey& key, sim::SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  // Snapshot of the registry-backed counters (cheap: six slot reads).
  CacheStats stats() const {
    return CacheStats{hits_.value(),       misses_.value(),
                      expired_.value(),    insertions_.value(),
                      evictions_.value(),  swept_.value()};
  }
  void ResetStats() {
    hits_.Reset();
    misses_.Reset();
    expired_.Reset();
    insertions_.Reset();
    evictions_.Reset();
    swept_.Reset();
  }
  void Clear();

  // Number of cached RRsets whose owner is a TLD (single non-root label) —
  // the §5.1 "fraction of TLDs already cached" measurement.
  std::size_t TldRRsetCount() const;

 private:
  struct Entry {
    dns::RRset rrset;
    sim::SimTime expiry = 0;
    // Intrusive LRU links (head = most recent) and a pointer back to the
    // owning map node's key for O(1) eviction. unordered_map nodes are
    // address-stable, so both stay valid across rehashes.
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
    const dns::RRsetKey* key = nullptr;
  };
  // Map nodes come from a pool: at capacity every Put is an insert+erase
  // pair, which the pool turns from malloc+free into two list operations.
  // Transparent hash/equal admit RRsetKeyView probes (no Name copy).
  using Map = std::unordered_map<
      dns::RRsetKey, Entry, dns::RRsetKeyHash, dns::RRsetKeyEqual,
      util::PoolAllocator<std::pair<const dns::RRsetKey, Entry>>>;

  // Shared lookup body for key and key-view probes (instantiated in the .cc).
  template <typename KeyLike>
  const dns::RRset* GetImpl(const KeyLike& key, sim::SimTime now);

  // Shared insert body for owning RRsets and borrowed RRsetViews.
  template <typename SetLike>
  void PutImpl(const SetLike& rrset, sim::SimTime expiry, sim::SimTime now);

  void PushFront(Entry& entry);
  void Unlink(Entry& entry);
  void MoveToFront(Entry& entry);
  // Unlinks and erases; invalidates `entry`.
  void EraseEntry(Entry& entry);
  void EvictIfNeeded();
  // Advances the roving expiry sweep by a constant number of entries.
  void SweepStep(sim::SimTime now);

  std::size_t capacity_;
  Map entries_;
  Entry* lru_head_ = nullptr;  // most recent
  Entry* lru_tail_ = nullptr;  // least recent
  Entry* sweep_cursor_ = nullptr;
  // Pre-resolved registry handles: a stats bump on the hot path is one
  // 64-bit add through the handle's pointer.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter expired_;
  obs::Counter insertions_;
  obs::Counter evictions_;
  obs::Counter swept_;
};

}  // namespace rootless::resolver
