#include "resolver/cache.h"

#include "util/check.h"

namespace rootless::resolver {

namespace {
// Entries examined by the lazy expiry sweep per insertion. Two per Put keeps
// the steady-state fraction of dead entries bounded while adding a couple of
// slot reads to the insert path.
constexpr int kSweepPerPut = 2;

// Adapters letting the shared bodies treat owning RRsets, borrowed
// RRsetViews, and both key flavours uniformly.
inline const dns::Name& OwnerOf(const dns::RRset& s) { return s.name; }
inline const dns::Name& OwnerOf(const dns::RRsetView& s) { return *s.name; }
inline const dns::Name& KeyName(const dns::RRsetKey& k) { return k.name; }
inline const dns::Name& KeyName(const dns::RRsetKeyView& k) { return *k.name; }
inline const dns::NameView& KeyName(const dns::RRsetSuffixKey& k) {
  return k.name;
}
inline void AssignSet(dns::RRset& dst, const dns::RRset& src) { dst = src; }
inline void AssignSet(dns::RRset& dst, const dns::RRsetView& src) {
  dst.name = *src.name;
  dst.type = src.type;
  dst.rrclass = src.rrclass;
  dst.ttl = src.ttl;
  dst.rdatas.assign(src.rdatas.begin(), src.rdatas.end());
}
}  // namespace

DnsCache::DnsCache(std::size_t capacity, obs::Registry* registry)
    : capacity_(capacity) {
  obs::Registry& reg = registry ? *registry : obs::Registry::Default();
  const obs::Labels labels{reg.NextInstance("resolver.cache"), "", ""};
  hits_ = reg.counter("resolver.cache.hits", labels);
  misses_ = reg.counter("resolver.cache.misses", labels);
  expired_ = reg.counter("resolver.cache.expired", labels);
  insertions_ = reg.counter("resolver.cache.insertions", labels);
  evictions_ = reg.counter("resolver.cache.evictions", labels);
  swept_ = reg.counter("resolver.cache.swept", labels);
  if (capacity_ != 0) {
    slots_.reserve(capacity_);
    index_.Reserve(capacity_);
  }
}

template <typename KeyLike>
std::uint32_t DnsCache::FindSlot(std::uint64_t hash,
                                 const KeyLike& key) const {
  return index_.Find(hash, [&](std::uint32_t s) {
    const Slot& slot = slots_[s];
    return slot.hash == hash && slot.rrset.type == key.type &&
           slot.rrset.rrclass == key.rrclass &&
           slot.rrset.name == KeyName(key);
  });
}

template <typename KeyLike>
const dns::RRset* DnsCache::GetImpl(const KeyLike& key, sim::SimTime now) {
  const std::uint64_t hash = dns::RRsetKeyHash{}(key);
  const std::uint32_t s = FindSlot(hash, key);
  if (s == kNil) {
    misses_.Inc();
    return nullptr;
  }
  Slot& slot = slots_[s];
  if (slot.expiry <= now) {
    expired_.Inc();
    EraseSlot(s);
    return nullptr;
  }
  hits_.Inc();
  MoveToFront(s);
  return &slot.rrset;
}

const dns::RRset* DnsCache::Get(const dns::RRsetKey& key, sim::SimTime now) {
  return GetImpl(key, now);
}

const dns::RRset* DnsCache::Get(const dns::Name& name, dns::RRType type,
                                sim::SimTime now) {
  return GetImpl(dns::RRsetKeyView{&name, type, dns::RRClass::kIN}, now);
}

const dns::RRset* DnsCache::Get(const dns::NameView& name, dns::RRType type,
                                sim::SimTime now) {
  return GetImpl(dns::RRsetSuffixKey{name, type, dns::RRClass::kIN}, now);
}

void DnsCache::Put(const dns::RRset& rrset, sim::SimTime now) {
  PutImpl(rrset, now + static_cast<sim::SimTime>(rrset.ttl) * sim::kSecond,
          now);
}

void DnsCache::Put(const dns::RRsetView& rrset, sim::SimTime now) {
  PutImpl(rrset, now + static_cast<sim::SimTime>(rrset.ttl) * sim::kSecond,
          now);
}

void DnsCache::PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                             sim::SimTime now) {
  PutImpl(rrset, expiry, now);
}

void DnsCache::PutWithExpiry(const dns::RRsetView& rrset, sim::SimTime expiry,
                             sim::SimTime now) {
  PutImpl(rrset, expiry, now);
}

template <typename SetLike>
void DnsCache::PutImpl(const SetLike& rrset, sim::SimTime expiry,
                       sim::SimTime now) {
  const dns::RRsetKeyView probe{&OwnerOf(rrset), rrset.type, rrset.rrclass};
  const std::uint64_t hash = dns::RRsetKeyHash{}(probe);
  const std::uint32_t found = FindSlot(hash, probe);
  if (found != kNil) {
    Slot& slot = slots_[found];
    AssignSet(slot.rrset, rrset);
    slot.expiry = expiry;
    MoveToFront(found);
    return;
  }
  insertions_.Inc();
  const auto hash_of = [this](std::uint32_t s) { return slots_[s].hash; };
  if (capacity_ != 0 && index_.size() >= capacity_ && lru_tail_ != kNil) {
    // At capacity a new key means insert+evict. Reuse the victim's slot in
    // place: its rdata buffers become the new entry's, so steady-state churn
    // touches no allocator at all. Only the index changes — a tombstone for
    // the victim's hash, a fill for the new one.
    const std::uint32_t victim = lru_tail_;
    Slot& slot = slots_[victim];
    Unlink(victim);
    index_.Erase(slot.hash, [victim](std::uint32_t s) { return s == victim; });
    evictions_.Inc();
    AssignSet(slot.rrset, rrset);
    slot.expiry = expiry;
    slot.hash = hash;
    index_.Insert(hash, victim, hash_of);
    PushFront(victim);
    SweepStep(now);
    return;
  }
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[s];
  AssignSet(slot.rrset, rrset);
  slot.expiry = expiry;
  slot.hash = hash;
  slot.live = true;
  index_.Insert(hash, s, hash_of);
  PushFront(s);
  EvictIfNeeded();
  SweepStep(now);
}

std::size_t DnsCache::PurgeExpired(sim::SimTime now) {
  std::size_t removed = 0;
  for (std::uint32_t s = 0; s < slots_.size(); ++s) {
    if (slots_[s].live && slots_[s].expiry <= now) {
      EraseSlot(s);
      ++removed;
    }
  }
  return removed;
}

bool DnsCache::Contains(const dns::RRsetKey& key, sim::SimTime now) const {
  const std::uint32_t s = FindSlot(dns::RRsetKeyHash{}(key), key);
  return s != kNil && slots_[s].expiry > now;
}

void DnsCache::Clear() {
  slots_.clear();
  free_.clear();
  index_.Clear();
  lru_head_ = lru_tail_ = sweep_cursor_ = kNil;
}

std::size_t DnsCache::TldRRsetCount() const {
  std::size_t count = 0;
  for (const Slot& slot : slots_) {
    if (slot.live && slot.rrset.name.label_count() == 1) ++count;
  }
  return count;
}

void DnsCache::PushFront(std::uint32_t s) {
  Slot& slot = slots_[s];
  slot.lru_prev = kNil;
  slot.lru_next = lru_head_;
  if (lru_head_ != kNil) slots_[lru_head_].lru_prev = s;
  lru_head_ = s;
  if (lru_tail_ == kNil) lru_tail_ = s;
}

void DnsCache::Unlink(std::uint32_t s) {
  Slot& slot = slots_[s];
  if (sweep_cursor_ == s) sweep_cursor_ = slot.lru_prev;
  if (slot.lru_prev != kNil) {
    slots_[slot.lru_prev].lru_next = slot.lru_next;
  } else {
    lru_head_ = slot.lru_next;
  }
  if (slot.lru_next != kNil) {
    slots_[slot.lru_next].lru_prev = slot.lru_prev;
  } else {
    lru_tail_ = slot.lru_prev;
  }
  slot.lru_prev = slot.lru_next = kNil;
}

void DnsCache::MoveToFront(std::uint32_t s) {
  if (lru_head_ == s) return;
  // Unlink hops the sweep cursor to the predecessor if it sat on `s`,
  // preserving the tail-to-head walk.
  Unlink(s);
  PushFront(s);
}

void DnsCache::EraseSlot(std::uint32_t s) {
  Slot& slot = slots_[s];
  Unlink(s);
  index_.Erase(slot.hash, [s](std::uint32_t cand) { return cand == s; });
  slot.live = false;
  // rdata buffers stay in the dead slot; the next insert that pops it off
  // the free list reuses their capacity.
  free_.push_back(s);
}

void DnsCache::EvictIfNeeded() {
  while (capacity_ != 0 && index_.size() > capacity_ && lru_tail_ != kNil) {
    EraseSlot(lru_tail_);
    evictions_.Inc();
  }
}

void DnsCache::SweepStep(sim::SimTime now) {
  for (int i = 0; i < kSweepPerPut; ++i) {
    if (sweep_cursor_ == kNil) sweep_cursor_ = lru_tail_;
    if (sweep_cursor_ == kNil) return;
    const std::uint32_t s = sweep_cursor_;
    sweep_cursor_ = slots_[s].lru_prev;  // advance toward the head
    if (slots_[s].expiry <= now) {
      EraseSlot(s);
      swept_.Inc();
    }
  }
}

}  // namespace rootless::resolver
