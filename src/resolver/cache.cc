#include "resolver/cache.h"

#include "util/check.h"

namespace rootless::resolver {

namespace {
// Entries examined by the lazy expiry sweep per insertion. Two per Put keeps
// the steady-state fraction of dead entries bounded while adding a couple of
// pointer chases to the insert path.
constexpr int kSweepPerPut = 2;

// Adapters letting PutImpl treat owning RRsets and borrowed RRsetViews
// uniformly.
inline const dns::Name& OwnerOf(const dns::RRset& s) { return s.name; }
inline const dns::Name& OwnerOf(const dns::RRsetView& s) { return *s.name; }
inline void AssignSet(dns::RRset& dst, const dns::RRset& src) { dst = src; }
inline void AssignSet(dns::RRset& dst, const dns::RRsetView& src) {
  dst.name = *src.name;
  dst.type = src.type;
  dst.rrclass = src.rrclass;
  dst.ttl = src.ttl;
  dst.rdatas.assign(src.rdatas.begin(), src.rdatas.end());
}
}  // namespace

DnsCache::DnsCache(std::size_t capacity, obs::Registry* registry)
    : capacity_(capacity) {
  obs::Registry& reg = registry ? *registry : obs::Registry::Default();
  const obs::Labels labels{reg.NextInstance("resolver.cache"), "", ""};
  hits_ = reg.counter("resolver.cache.hits", labels);
  misses_ = reg.counter("resolver.cache.misses", labels);
  expired_ = reg.counter("resolver.cache.expired", labels);
  insertions_ = reg.counter("resolver.cache.insertions", labels);
  evictions_ = reg.counter("resolver.cache.evictions", labels);
  swept_ = reg.counter("resolver.cache.swept", labels);
}

template <typename KeyLike>
const dns::RRset* DnsCache::GetImpl(const KeyLike& key, sim::SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.Inc();
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.expiry <= now) {
    expired_.Inc();
    Unlink(entry);
    entries_.erase(it);
    return nullptr;
  }
  hits_.Inc();
  MoveToFront(entry);
  return &entry.rrset;
}

const dns::RRset* DnsCache::Get(const dns::RRsetKey& key, sim::SimTime now) {
  return GetImpl(key, now);
}

const dns::RRset* DnsCache::Get(const dns::Name& name, dns::RRType type,
                                sim::SimTime now) {
  return GetImpl(dns::RRsetKeyView{&name, type, dns::RRClass::kIN}, now);
}

void DnsCache::Put(const dns::RRset& rrset, sim::SimTime now) {
  PutImpl(rrset, now + static_cast<sim::SimTime>(rrset.ttl) * sim::kSecond,
          now);
}

void DnsCache::Put(const dns::RRsetView& rrset, sim::SimTime now) {
  PutImpl(rrset, now + static_cast<sim::SimTime>(rrset.ttl) * sim::kSecond,
          now);
}

void DnsCache::PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                             sim::SimTime now) {
  PutImpl(rrset, expiry, now);
}

void DnsCache::PutWithExpiry(const dns::RRsetView& rrset, sim::SimTime expiry,
                             sim::SimTime now) {
  PutImpl(rrset, expiry, now);
}

template <typename SetLike>
void DnsCache::PutImpl(const SetLike& rrset, sim::SimTime expiry,
                       sim::SimTime now) {
  const dns::RRsetKeyView probe{&OwnerOf(rrset), rrset.type, rrset.rrclass};
  auto it = entries_.find(probe);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    AssignSet(entry.rrset, rrset);
    entry.expiry = expiry;
    MoveToFront(entry);
    return;
  }
  insertions_.Inc();
  if (capacity_ != 0 && entries_.size() >= capacity_ && lru_tail_ != nullptr) {
    // At capacity a new key means insert+evict. Salvage the victim's RRset
    // buffers before erasing, so the new entry reuses its rdata capacity;
    // the erased node goes on the pool free list and try_emplace takes it
    // straight back — no heap traffic in steady state. (Deliberately not
    // extract()/insert(node): libstdc++ < 14 never destroys the allocator
    // copy a node handle holds once insertion empties it, which leaks the
    // pool's shared state — GCC PR 114401.)
    Entry* victim = lru_tail_;
    Unlink(*victim);
    dns::RRset recycled = std::move(victim->rrset);
    entries_.erase(*victim->key);
    evictions_.Inc();
    auto [slot, inserted] = entries_.try_emplace(
        dns::RRsetKey{OwnerOf(rrset), rrset.type, rrset.rrclass});
    ROOTLESS_CHECK(inserted);
    Entry& entry = slot->second;
    entry.rrset = std::move(recycled);
    AssignSet(entry.rrset, rrset);
    entry.expiry = expiry;
    entry.key = &slot->first;
    PushFront(entry);
    SweepStep(now);
    return;
  }
  auto [slot, inserted] = entries_.try_emplace(
      dns::RRsetKey{OwnerOf(rrset), rrset.type, rrset.rrclass});
  ROOTLESS_CHECK(inserted);
  Entry& entry = slot->second;
  AssignSet(entry.rrset, rrset);
  entry.expiry = expiry;
  entry.key = &slot->first;
  PushFront(entry);
  EvictIfNeeded();
  SweepStep(now);
}

std::size_t DnsCache::PurgeExpired(sim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expiry <= now) {
      Unlink(it->second);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool DnsCache::Contains(const dns::RRsetKey& key, sim::SimTime now) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.expiry > now;
}

void DnsCache::Clear() {
  entries_.clear();
  lru_head_ = lru_tail_ = sweep_cursor_ = nullptr;
}

std::size_t DnsCache::TldRRsetCount() const {
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (key.name.label_count() == 1) ++count;
  }
  return count;
}

void DnsCache::PushFront(Entry& entry) {
  entry.lru_prev = nullptr;
  entry.lru_next = lru_head_;
  if (lru_head_ != nullptr) lru_head_->lru_prev = &entry;
  lru_head_ = &entry;
  if (lru_tail_ == nullptr) lru_tail_ = &entry;
}

void DnsCache::Unlink(Entry& entry) {
  if (sweep_cursor_ == &entry) sweep_cursor_ = entry.lru_prev;
  if (entry.lru_prev != nullptr) {
    entry.lru_prev->lru_next = entry.lru_next;
  } else {
    lru_head_ = entry.lru_next;
  }
  if (entry.lru_next != nullptr) {
    entry.lru_next->lru_prev = entry.lru_prev;
  } else {
    lru_tail_ = entry.lru_prev;
  }
  entry.lru_prev = entry.lru_next = nullptr;
}

void DnsCache::MoveToFront(Entry& entry) {
  if (lru_head_ == &entry) return;
  // Unlink hops the sweep cursor to the predecessor if it sat on `entry`,
  // preserving the tail-to-head walk.
  Unlink(entry);
  PushFront(entry);
}

void DnsCache::EraseEntry(Entry& entry) {
  const dns::RRsetKey* key = entry.key;
  Unlink(entry);
  entries_.erase(*key);
}

void DnsCache::EvictIfNeeded() {
  while (capacity_ != 0 && entries_.size() > capacity_) {
    EraseEntry(*lru_tail_);
    evictions_.Inc();
  }
}

void DnsCache::SweepStep(sim::SimTime now) {
  for (int i = 0; i < kSweepPerPut; ++i) {
    if (sweep_cursor_ == nullptr) sweep_cursor_ = lru_tail_;
    if (sweep_cursor_ == nullptr) return;
    Entry* entry = sweep_cursor_;
    sweep_cursor_ = entry->lru_prev;  // advance toward the head
    if (entry->expiry <= now) {
      EraseEntry(*entry);
      swept_.Inc();
    }
  }
}

}  // namespace rootless::resolver
