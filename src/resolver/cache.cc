#include "resolver/cache.h"

namespace rootless::resolver {

const dns::RRset* DnsCache::Get(const dns::RRsetKey& key, sim::SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.expiry <= now) {
    ++stats_.expired;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return nullptr;
  }
  ++stats_.hits;
  Touch(it->second, key);
  return &it->second.rrset;
}

void DnsCache::Put(const dns::RRset& rrset, sim::SimTime now) {
  PutWithExpiry(rrset, now + static_cast<sim::SimTime>(rrset.ttl) * sim::kSecond,
                now);
}

void DnsCache::PutWithExpiry(const dns::RRset& rrset, sim::SimTime expiry,
                             sim::SimTime now) {
  (void)now;
  const dns::RRsetKey key = rrset.key();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.rrset = rrset;
    it->second.expiry = expiry;
    Touch(it->second, key);
    return;
  }
  ++stats_.insertions;
  lru_.push_front(key);
  entries_.emplace(key, Entry{rrset, expiry, lru_.begin()});
  EvictIfNeeded();
}

std::size_t DnsCache::PurgeExpired(sim::SimTime now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expiry <= now) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

bool DnsCache::Contains(const dns::RRsetKey& key, sim::SimTime now) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.expiry > now;
}

void DnsCache::Clear() {
  entries_.clear();
  lru_.clear();
}

std::size_t DnsCache::TldRRsetCount() const {
  std::size_t count = 0;
  for (const auto& [key, entry] : entries_) {
    if (key.name.label_count() == 1) ++count;
  }
  return count;
}

void DnsCache::Touch(Entry& entry, const dns::RRsetKey& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void DnsCache::EvictIfNeeded() {
  while (capacity_ != 0 && entries_.size() > capacity_) {
    const dns::RRsetKey& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace rootless::resolver
