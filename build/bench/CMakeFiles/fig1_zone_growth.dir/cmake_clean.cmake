file(REMOVE_RECURSE
  "CMakeFiles/fig1_zone_growth.dir/fig1_zone_growth.cc.o"
  "CMakeFiles/fig1_zone_growth.dir/fig1_zone_growth.cc.o.d"
  "fig1_zone_growth"
  "fig1_zone_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_zone_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
