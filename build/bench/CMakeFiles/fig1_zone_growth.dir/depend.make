# Empty dependencies file for fig1_zone_growth.
# This may be replaced when dependencies are built.
