# Empty compiler generated dependencies file for sec22_traffic_mix.
# This may be replaced when dependencies are built.
