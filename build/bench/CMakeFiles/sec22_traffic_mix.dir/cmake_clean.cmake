file(REMOVE_RECURSE
  "CMakeFiles/sec22_traffic_mix.dir/sec22_traffic_mix.cc.o"
  "CMakeFiles/sec22_traffic_mix.dir/sec22_traffic_mix.cc.o.d"
  "sec22_traffic_mix"
  "sec22_traffic_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec22_traffic_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
