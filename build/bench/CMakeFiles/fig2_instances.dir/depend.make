# Empty dependencies file for fig2_instances.
# This may be replaced when dependencies are built.
