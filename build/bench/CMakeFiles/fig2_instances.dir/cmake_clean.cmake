file(REMOVE_RECURSE
  "CMakeFiles/fig2_instances.dir/fig2_instances.cc.o"
  "CMakeFiles/fig2_instances.dir/fig2_instances.cc.o.d"
  "fig2_instances"
  "fig2_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
