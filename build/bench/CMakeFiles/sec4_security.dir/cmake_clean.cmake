file(REMOVE_RECURSE
  "CMakeFiles/sec4_security.dir/sec4_security.cc.o"
  "CMakeFiles/sec4_security.dir/sec4_security.cc.o.d"
  "sec4_security"
  "sec4_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
