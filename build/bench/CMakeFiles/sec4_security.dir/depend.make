# Empty dependencies file for sec4_security.
# This may be replaced when dependencies are built.
