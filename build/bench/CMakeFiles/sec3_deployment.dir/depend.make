# Empty dependencies file for sec3_deployment.
# This may be replaced when dependencies are built.
