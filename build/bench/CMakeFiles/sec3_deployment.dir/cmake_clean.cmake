file(REMOVE_RECURSE
  "CMakeFiles/sec3_deployment.dir/sec3_deployment.cc.o"
  "CMakeFiles/sec3_deployment.dir/sec3_deployment.cc.o.d"
  "sec3_deployment"
  "sec3_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec3_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
