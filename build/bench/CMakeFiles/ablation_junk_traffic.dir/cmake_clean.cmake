file(REMOVE_RECURSE
  "CMakeFiles/ablation_junk_traffic.dir/ablation_junk_traffic.cc.o"
  "CMakeFiles/ablation_junk_traffic.dir/ablation_junk_traffic.cc.o.d"
  "ablation_junk_traffic"
  "ablation_junk_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_junk_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
