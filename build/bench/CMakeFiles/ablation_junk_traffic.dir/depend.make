# Empty dependencies file for ablation_junk_traffic.
# This may be replaced when dependencies are built.
