file(REMOVE_RECURSE
  "CMakeFiles/ablation_encrypted_transport.dir/ablation_encrypted_transport.cc.o"
  "CMakeFiles/ablation_encrypted_transport.dir/ablation_encrypted_transport.cc.o.d"
  "ablation_encrypted_transport"
  "ablation_encrypted_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encrypted_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
