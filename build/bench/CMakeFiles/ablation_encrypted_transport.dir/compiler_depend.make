# Empty compiler generated dependencies file for ablation_encrypted_transport.
# This may be replaced when dependencies are built.
