# Empty compiler generated dependencies file for sec51_size.
# This may be replaced when dependencies are built.
