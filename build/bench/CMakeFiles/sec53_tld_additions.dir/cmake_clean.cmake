file(REMOVE_RECURSE
  "CMakeFiles/sec53_tld_additions.dir/sec53_tld_additions.cc.o"
  "CMakeFiles/sec53_tld_additions.dir/sec53_tld_additions.cc.o.d"
  "sec53_tld_additions"
  "sec53_tld_additions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_tld_additions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
