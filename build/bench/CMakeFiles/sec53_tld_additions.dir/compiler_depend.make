# Empty compiler generated dependencies file for sec53_tld_additions.
# This may be replaced when dependencies are built.
