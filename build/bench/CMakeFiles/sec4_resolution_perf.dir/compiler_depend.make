# Empty compiler generated dependencies file for sec4_resolution_perf.
# This may be replaced when dependencies are built.
