file(REMOVE_RECURSE
  "CMakeFiles/sec4_resolution_perf.dir/sec4_resolution_perf.cc.o"
  "CMakeFiles/sec4_resolution_perf.dir/sec4_resolution_perf.cc.o.d"
  "sec4_resolution_perf"
  "sec4_resolution_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_resolution_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
