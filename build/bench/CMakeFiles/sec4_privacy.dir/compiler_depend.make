# Empty compiler generated dependencies file for sec4_privacy.
# This may be replaced when dependencies are built.
