file(REMOVE_RECURSE
  "CMakeFiles/sec4_privacy.dir/sec4_privacy.cc.o"
  "CMakeFiles/sec4_privacy.dir/sec4_privacy.cc.o.d"
  "sec4_privacy"
  "sec4_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
