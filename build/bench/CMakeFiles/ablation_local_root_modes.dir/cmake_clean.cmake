file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_root_modes.dir/ablation_local_root_modes.cc.o"
  "CMakeFiles/ablation_local_root_modes.dir/ablation_local_root_modes.cc.o.d"
  "ablation_local_root_modes"
  "ablation_local_root_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_root_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
