# Empty dependencies file for ablation_local_root_modes.
# This may be replaced when dependencies are built.
