# Empty dependencies file for sec52_distribution.
# This may be replaced when dependencies are built.
