file(REMOVE_RECURSE
  "CMakeFiles/sec52_distribution.dir/sec52_distribution.cc.o"
  "CMakeFiles/sec52_distribution.dir/sec52_distribution.cc.o.d"
  "sec52_distribution"
  "sec52_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec52_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
