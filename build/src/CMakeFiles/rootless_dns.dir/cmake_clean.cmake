file(REMOVE_RECURSE
  "CMakeFiles/rootless_dns.dir/dns/message.cc.o"
  "CMakeFiles/rootless_dns.dir/dns/message.cc.o.d"
  "CMakeFiles/rootless_dns.dir/dns/name.cc.o"
  "CMakeFiles/rootless_dns.dir/dns/name.cc.o.d"
  "CMakeFiles/rootless_dns.dir/dns/rdata.cc.o"
  "CMakeFiles/rootless_dns.dir/dns/rdata.cc.o.d"
  "CMakeFiles/rootless_dns.dir/dns/rr.cc.o"
  "CMakeFiles/rootless_dns.dir/dns/rr.cc.o.d"
  "CMakeFiles/rootless_dns.dir/dns/types.cc.o"
  "CMakeFiles/rootless_dns.dir/dns/types.cc.o.d"
  "librootless_dns.a"
  "librootless_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
