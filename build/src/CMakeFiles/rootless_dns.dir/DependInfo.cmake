
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dns/message.cc" "src/CMakeFiles/rootless_dns.dir/dns/message.cc.o" "gcc" "src/CMakeFiles/rootless_dns.dir/dns/message.cc.o.d"
  "/root/repo/src/dns/name.cc" "src/CMakeFiles/rootless_dns.dir/dns/name.cc.o" "gcc" "src/CMakeFiles/rootless_dns.dir/dns/name.cc.o.d"
  "/root/repo/src/dns/rdata.cc" "src/CMakeFiles/rootless_dns.dir/dns/rdata.cc.o" "gcc" "src/CMakeFiles/rootless_dns.dir/dns/rdata.cc.o.d"
  "/root/repo/src/dns/rr.cc" "src/CMakeFiles/rootless_dns.dir/dns/rr.cc.o" "gcc" "src/CMakeFiles/rootless_dns.dir/dns/rr.cc.o.d"
  "/root/repo/src/dns/types.cc" "src/CMakeFiles/rootless_dns.dir/dns/types.cc.o" "gcc" "src/CMakeFiles/rootless_dns.dir/dns/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
