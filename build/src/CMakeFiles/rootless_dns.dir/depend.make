# Empty dependencies file for rootless_dns.
# This may be replaced when dependencies are built.
