file(REMOVE_RECURSE
  "librootless_dns.a"
)
