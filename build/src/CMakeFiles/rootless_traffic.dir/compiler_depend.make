# Empty compiler generated dependencies file for rootless_traffic.
# This may be replaced when dependencies are built.
