
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/classify.cc" "src/CMakeFiles/rootless_traffic.dir/traffic/classify.cc.o" "gcc" "src/CMakeFiles/rootless_traffic.dir/traffic/classify.cc.o.d"
  "/root/repo/src/traffic/trace.cc" "src/CMakeFiles/rootless_traffic.dir/traffic/trace.cc.o" "gcc" "src/CMakeFiles/rootless_traffic.dir/traffic/trace.cc.o.d"
  "/root/repo/src/traffic/workload.cc" "src/CMakeFiles/rootless_traffic.dir/traffic/workload.cc.o" "gcc" "src/CMakeFiles/rootless_traffic.dir/traffic/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
