file(REMOVE_RECURSE
  "CMakeFiles/rootless_traffic.dir/traffic/classify.cc.o"
  "CMakeFiles/rootless_traffic.dir/traffic/classify.cc.o.d"
  "CMakeFiles/rootless_traffic.dir/traffic/trace.cc.o"
  "CMakeFiles/rootless_traffic.dir/traffic/trace.cc.o.d"
  "CMakeFiles/rootless_traffic.dir/traffic/workload.cc.o"
  "CMakeFiles/rootless_traffic.dir/traffic/workload.cc.o.d"
  "librootless_traffic.a"
  "librootless_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
