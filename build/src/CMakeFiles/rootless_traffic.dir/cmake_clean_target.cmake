file(REMOVE_RECURSE
  "librootless_traffic.a"
)
