file(REMOVE_RECURSE
  "librootless_resolver.a"
)
