
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/cache.cc" "src/CMakeFiles/rootless_resolver.dir/resolver/cache.cc.o" "gcc" "src/CMakeFiles/rootless_resolver.dir/resolver/cache.cc.o.d"
  "/root/repo/src/resolver/recursive.cc" "src/CMakeFiles/rootless_resolver.dir/resolver/recursive.cc.o" "gcc" "src/CMakeFiles/rootless_resolver.dir/resolver/recursive.cc.o.d"
  "/root/repo/src/resolver/refresh_daemon.cc" "src/CMakeFiles/rootless_resolver.dir/resolver/refresh_daemon.cc.o" "gcc" "src/CMakeFiles/rootless_resolver.dir/resolver/refresh_daemon.cc.o.d"
  "/root/repo/src/resolver/root_selector.cc" "src/CMakeFiles/rootless_resolver.dir/resolver/root_selector.cc.o" "gcc" "src/CMakeFiles/rootless_resolver.dir/resolver/root_selector.cc.o.d"
  "/root/repo/src/resolver/zone_db.cc" "src/CMakeFiles/rootless_resolver.dir/resolver/zone_db.cc.o" "gcc" "src/CMakeFiles/rootless_resolver.dir/resolver/zone_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_rootsrv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
