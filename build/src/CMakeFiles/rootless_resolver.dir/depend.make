# Empty dependencies file for rootless_resolver.
# This may be replaced when dependencies are built.
