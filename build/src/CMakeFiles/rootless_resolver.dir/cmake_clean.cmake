file(REMOVE_RECURSE
  "CMakeFiles/rootless_resolver.dir/resolver/cache.cc.o"
  "CMakeFiles/rootless_resolver.dir/resolver/cache.cc.o.d"
  "CMakeFiles/rootless_resolver.dir/resolver/recursive.cc.o"
  "CMakeFiles/rootless_resolver.dir/resolver/recursive.cc.o.d"
  "CMakeFiles/rootless_resolver.dir/resolver/refresh_daemon.cc.o"
  "CMakeFiles/rootless_resolver.dir/resolver/refresh_daemon.cc.o.d"
  "CMakeFiles/rootless_resolver.dir/resolver/root_selector.cc.o"
  "CMakeFiles/rootless_resolver.dir/resolver/root_selector.cc.o.d"
  "CMakeFiles/rootless_resolver.dir/resolver/zone_db.cc.o"
  "CMakeFiles/rootless_resolver.dir/resolver/zone_db.cc.o.d"
  "librootless_resolver.a"
  "librootless_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
