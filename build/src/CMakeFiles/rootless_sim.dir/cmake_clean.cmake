file(REMOVE_RECURSE
  "CMakeFiles/rootless_sim.dir/sim/sim.cc.o"
  "CMakeFiles/rootless_sim.dir/sim/sim.cc.o.d"
  "librootless_sim.a"
  "librootless_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
