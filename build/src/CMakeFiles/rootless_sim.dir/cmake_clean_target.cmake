file(REMOVE_RECURSE
  "librootless_sim.a"
)
