# Empty compiler generated dependencies file for rootless_sim.
# This may be replaced when dependencies are built.
