file(REMOVE_RECURSE
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/auth_server.cc.o"
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/auth_server.cc.o.d"
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/fleet.cc.o"
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/fleet.cc.o.d"
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/tld_farm.cc.o"
  "CMakeFiles/rootless_rootsrv.dir/rootsrv/tld_farm.cc.o.d"
  "librootless_rootsrv.a"
  "librootless_rootsrv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_rootsrv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
