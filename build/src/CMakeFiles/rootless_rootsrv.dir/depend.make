# Empty dependencies file for rootless_rootsrv.
# This may be replaced when dependencies are built.
