file(REMOVE_RECURSE
  "librootless_rootsrv.a"
)
