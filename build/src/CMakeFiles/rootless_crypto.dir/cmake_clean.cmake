file(REMOVE_RECURSE
  "CMakeFiles/rootless_crypto.dir/crypto/dnssec.cc.o"
  "CMakeFiles/rootless_crypto.dir/crypto/dnssec.cc.o.d"
  "CMakeFiles/rootless_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/rootless_crypto.dir/crypto/sha256.cc.o.d"
  "librootless_crypto.a"
  "librootless_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
