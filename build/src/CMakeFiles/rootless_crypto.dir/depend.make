# Empty dependencies file for rootless_crypto.
# This may be replaced when dependencies are built.
