file(REMOVE_RECURSE
  "librootless_crypto.a"
)
