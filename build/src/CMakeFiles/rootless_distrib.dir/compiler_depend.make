# Empty compiler generated dependencies file for rootless_distrib.
# This may be replaced when dependencies are built.
