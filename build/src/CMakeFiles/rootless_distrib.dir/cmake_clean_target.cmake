file(REMOVE_RECURSE
  "librootless_distrib.a"
)
