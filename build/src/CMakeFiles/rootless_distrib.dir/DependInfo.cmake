
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distrib/axfr.cc" "src/CMakeFiles/rootless_distrib.dir/distrib/axfr.cc.o" "gcc" "src/CMakeFiles/rootless_distrib.dir/distrib/axfr.cc.o.d"
  "/root/repo/src/distrib/diff_channel.cc" "src/CMakeFiles/rootless_distrib.dir/distrib/diff_channel.cc.o" "gcc" "src/CMakeFiles/rootless_distrib.dir/distrib/diff_channel.cc.o.d"
  "/root/repo/src/distrib/fetch_service.cc" "src/CMakeFiles/rootless_distrib.dir/distrib/fetch_service.cc.o" "gcc" "src/CMakeFiles/rootless_distrib.dir/distrib/fetch_service.cc.o.d"
  "/root/repo/src/distrib/mechanisms.cc" "src/CMakeFiles/rootless_distrib.dir/distrib/mechanisms.cc.o" "gcc" "src/CMakeFiles/rootless_distrib.dir/distrib/mechanisms.cc.o.d"
  "/root/repo/src/distrib/rsync.cc" "src/CMakeFiles/rootless_distrib.dir/distrib/rsync.cc.o" "gcc" "src/CMakeFiles/rootless_distrib.dir/distrib/rsync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
