file(REMOVE_RECURSE
  "CMakeFiles/rootless_distrib.dir/distrib/axfr.cc.o"
  "CMakeFiles/rootless_distrib.dir/distrib/axfr.cc.o.d"
  "CMakeFiles/rootless_distrib.dir/distrib/diff_channel.cc.o"
  "CMakeFiles/rootless_distrib.dir/distrib/diff_channel.cc.o.d"
  "CMakeFiles/rootless_distrib.dir/distrib/fetch_service.cc.o"
  "CMakeFiles/rootless_distrib.dir/distrib/fetch_service.cc.o.d"
  "CMakeFiles/rootless_distrib.dir/distrib/mechanisms.cc.o"
  "CMakeFiles/rootless_distrib.dir/distrib/mechanisms.cc.o.d"
  "CMakeFiles/rootless_distrib.dir/distrib/rsync.cc.o"
  "CMakeFiles/rootless_distrib.dir/distrib/rsync.cc.o.d"
  "librootless_distrib.a"
  "librootless_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
