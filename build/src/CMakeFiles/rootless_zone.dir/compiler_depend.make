# Empty compiler generated dependencies file for rootless_zone.
# This may be replaced when dependencies are built.
