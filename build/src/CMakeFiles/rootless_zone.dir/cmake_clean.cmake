file(REMOVE_RECURSE
  "CMakeFiles/rootless_zone.dir/zone/evolution.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/evolution.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/master_file.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/master_file.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/root_hints.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/root_hints.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/rzc.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/rzc.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/sign.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/sign.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/snapshot.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/snapshot.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/zone.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/zone.cc.o.d"
  "CMakeFiles/rootless_zone.dir/zone/zone_diff.cc.o"
  "CMakeFiles/rootless_zone.dir/zone/zone_diff.cc.o.d"
  "librootless_zone.a"
  "librootless_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
