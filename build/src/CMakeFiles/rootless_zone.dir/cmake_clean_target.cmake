file(REMOVE_RECURSE
  "librootless_zone.a"
)
