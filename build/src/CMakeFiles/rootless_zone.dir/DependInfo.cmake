
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zone/evolution.cc" "src/CMakeFiles/rootless_zone.dir/zone/evolution.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/evolution.cc.o.d"
  "/root/repo/src/zone/master_file.cc" "src/CMakeFiles/rootless_zone.dir/zone/master_file.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/master_file.cc.o.d"
  "/root/repo/src/zone/root_hints.cc" "src/CMakeFiles/rootless_zone.dir/zone/root_hints.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/root_hints.cc.o.d"
  "/root/repo/src/zone/rzc.cc" "src/CMakeFiles/rootless_zone.dir/zone/rzc.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/rzc.cc.o.d"
  "/root/repo/src/zone/sign.cc" "src/CMakeFiles/rootless_zone.dir/zone/sign.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/sign.cc.o.d"
  "/root/repo/src/zone/snapshot.cc" "src/CMakeFiles/rootless_zone.dir/zone/snapshot.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/snapshot.cc.o.d"
  "/root/repo/src/zone/zone.cc" "src/CMakeFiles/rootless_zone.dir/zone/zone.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/zone.cc.o.d"
  "/root/repo/src/zone/zone_diff.cc" "src/CMakeFiles/rootless_zone.dir/zone/zone_diff.cc.o" "gcc" "src/CMakeFiles/rootless_zone.dir/zone/zone_diff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
