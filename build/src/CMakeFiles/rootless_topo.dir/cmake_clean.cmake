file(REMOVE_RECURSE
  "CMakeFiles/rootless_topo.dir/topo/deployment.cc.o"
  "CMakeFiles/rootless_topo.dir/topo/deployment.cc.o.d"
  "CMakeFiles/rootless_topo.dir/topo/geo.cc.o"
  "CMakeFiles/rootless_topo.dir/topo/geo.cc.o.d"
  "librootless_topo.a"
  "librootless_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
