
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/deployment.cc" "src/CMakeFiles/rootless_topo.dir/topo/deployment.cc.o" "gcc" "src/CMakeFiles/rootless_topo.dir/topo/deployment.cc.o.d"
  "/root/repo/src/topo/geo.cc" "src/CMakeFiles/rootless_topo.dir/topo/geo.cc.o" "gcc" "src/CMakeFiles/rootless_topo.dir/topo/geo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
