file(REMOVE_RECURSE
  "librootless_topo.a"
)
