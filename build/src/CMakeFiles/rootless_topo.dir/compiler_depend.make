# Empty compiler generated dependencies file for rootless_topo.
# This may be replaced when dependencies are built.
