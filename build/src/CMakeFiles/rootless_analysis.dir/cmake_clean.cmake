file(REMOVE_RECURSE
  "CMakeFiles/rootless_analysis.dir/analysis/report.cc.o"
  "CMakeFiles/rootless_analysis.dir/analysis/report.cc.o.d"
  "CMakeFiles/rootless_analysis.dir/analysis/stats.cc.o"
  "CMakeFiles/rootless_analysis.dir/analysis/stats.cc.o.d"
  "librootless_analysis.a"
  "librootless_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
