# Empty dependencies file for rootless_analysis.
# This may be replaced when dependencies are built.
