file(REMOVE_RECURSE
  "librootless_analysis.a"
)
