file(REMOVE_RECURSE
  "librootless_util.a"
)
