file(REMOVE_RECURSE
  "CMakeFiles/rootless_util.dir/util/base64.cc.o"
  "CMakeFiles/rootless_util.dir/util/base64.cc.o.d"
  "CMakeFiles/rootless_util.dir/util/civil_time.cc.o"
  "CMakeFiles/rootless_util.dir/util/civil_time.cc.o.d"
  "CMakeFiles/rootless_util.dir/util/strings.cc.o"
  "CMakeFiles/rootless_util.dir/util/strings.cc.o.d"
  "CMakeFiles/rootless_util.dir/util/zipf.cc.o"
  "CMakeFiles/rootless_util.dir/util/zipf.cc.o.d"
  "librootless_util.a"
  "librootless_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
