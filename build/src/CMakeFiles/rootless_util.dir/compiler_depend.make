# Empty compiler generated dependencies file for rootless_util.
# This may be replaced when dependencies are built.
