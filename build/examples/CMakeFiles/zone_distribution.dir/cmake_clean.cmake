file(REMOVE_RECURSE
  "CMakeFiles/zone_distribution.dir/zone_distribution.cc.o"
  "CMakeFiles/zone_distribution.dir/zone_distribution.cc.o.d"
  "zone_distribution"
  "zone_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zone_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
