# Empty dependencies file for zone_distribution.
# This may be replaced when dependencies are built.
