file(REMOVE_RECURSE
  "CMakeFiles/zonetool.dir/zonetool.cc.o"
  "CMakeFiles/zonetool.dir/zonetool.cc.o.d"
  "zonetool"
  "zonetool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zonetool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
