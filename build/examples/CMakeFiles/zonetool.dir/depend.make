# Empty dependencies file for zonetool.
# This may be replaced when dependencies are built.
