file(REMOVE_RECURSE
  "CMakeFiles/local_root_resolver.dir/local_root_resolver.cc.o"
  "CMakeFiles/local_root_resolver.dir/local_root_resolver.cc.o.d"
  "local_root_resolver"
  "local_root_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_root_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
