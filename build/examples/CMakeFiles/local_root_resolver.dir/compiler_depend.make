# Empty compiler generated dependencies file for local_root_resolver.
# This may be replaced when dependencies are built.
