file(REMOVE_RECURSE
  "CMakeFiles/rootless_dig.dir/rootless_dig.cc.o"
  "CMakeFiles/rootless_dig.dir/rootless_dig.cc.o.d"
  "rootless_dig"
  "rootless_dig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootless_dig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
