# Empty dependencies file for rootless_dig.
# This may be replaced when dependencies are built.
