# Empty dependencies file for ditl_study.
# This may be replaced when dependencies are built.
