file(REMOVE_RECURSE
  "CMakeFiles/ditl_study.dir/ditl_study.cc.o"
  "CMakeFiles/ditl_study.dir/ditl_study.cc.o.d"
  "ditl_study"
  "ditl_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ditl_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
