# Empty dependencies file for diff_channel_test.
# This may be replaced when dependencies are built.
