file(REMOVE_RECURSE
  "CMakeFiles/diff_channel_test.dir/diff_channel_test.cc.o"
  "CMakeFiles/diff_channel_test.dir/diff_channel_test.cc.o.d"
  "diff_channel_test"
  "diff_channel_test.pdb"
  "diff_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diff_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
