
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/axfr_test.cc" "tests/CMakeFiles/axfr_test.dir/axfr_test.cc.o" "gcc" "tests/CMakeFiles/axfr_test.dir/axfr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rootless_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_rootsrv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_distrib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rootless_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
