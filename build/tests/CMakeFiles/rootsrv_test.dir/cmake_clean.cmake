file(REMOVE_RECURSE
  "CMakeFiles/rootsrv_test.dir/rootsrv_test.cc.o"
  "CMakeFiles/rootsrv_test.dir/rootsrv_test.cc.o.d"
  "rootsrv_test"
  "rootsrv_test.pdb"
  "rootsrv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rootsrv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
