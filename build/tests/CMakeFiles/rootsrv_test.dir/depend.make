# Empty dependencies file for rootsrv_test.
# This may be replaced when dependencies are built.
