file(REMOVE_RECURSE
  "CMakeFiles/workload_structure_test.dir/workload_structure_test.cc.o"
  "CMakeFiles/workload_structure_test.dir/workload_structure_test.cc.o.d"
  "workload_structure_test"
  "workload_structure_test.pdb"
  "workload_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
