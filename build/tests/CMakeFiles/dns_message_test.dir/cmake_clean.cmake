file(REMOVE_RECURSE
  "CMakeFiles/dns_message_test.dir/dns_message_test.cc.o"
  "CMakeFiles/dns_message_test.dir/dns_message_test.cc.o.d"
  "dns_message_test"
  "dns_message_test.pdb"
  "dns_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dns_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
