file(REMOVE_RECURSE
  "CMakeFiles/distrib_test.dir/distrib_test.cc.o"
  "CMakeFiles/distrib_test.dir/distrib_test.cc.o.d"
  "distrib_test"
  "distrib_test.pdb"
  "distrib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distrib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
