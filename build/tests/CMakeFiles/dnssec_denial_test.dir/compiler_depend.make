# Empty compiler generated dependencies file for dnssec_denial_test.
# This may be replaced when dependencies are built.
