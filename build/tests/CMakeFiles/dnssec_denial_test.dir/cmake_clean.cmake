file(REMOVE_RECURSE
  "CMakeFiles/dnssec_denial_test.dir/dnssec_denial_test.cc.o"
  "CMakeFiles/dnssec_denial_test.dir/dnssec_denial_test.cc.o.d"
  "dnssec_denial_test"
  "dnssec_denial_test.pdb"
  "dnssec_denial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnssec_denial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
