# Empty dependencies file for resolver_edge_test.
# This may be replaced when dependencies are built.
