file(REMOVE_RECURSE
  "CMakeFiles/resolver_edge_test.dir/resolver_edge_test.cc.o"
  "CMakeFiles/resolver_edge_test.dir/resolver_edge_test.cc.o.d"
  "resolver_edge_test"
  "resolver_edge_test.pdb"
  "resolver_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
