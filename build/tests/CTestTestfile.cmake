# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/axfr_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/diff_channel_test[1]_include.cmake")
include("/root/repo/build/tests/distrib_test[1]_include.cmake")
include("/root/repo/build/tests/dns_message_test[1]_include.cmake")
include("/root/repo/build/tests/dns_name_test[1]_include.cmake")
include("/root/repo/build/tests/dnssec_denial_test[1]_include.cmake")
include("/root/repo/build/tests/evolution_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_edge_test[1]_include.cmake")
include("/root/repo/build/tests/resolver_test[1]_include.cmake")
include("/root/repo/build/tests/rootsrv_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/traffic_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/workload_structure_test[1]_include.cmake")
include("/root/repo/build/tests/zone_test[1]_include.cmake")
