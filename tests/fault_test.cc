// Tests for the fault-injection subsystem (sim/faults.h), the shared retry
// policy (sim/retry.h), the refresh daemon's fallback ladder + serve-stale
// degradation, and the coded-error contract on the distrib entry points.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "distrib/axfr.h"
#include "distrib/diff_channel.h"
#include "distrib/fetch_service.h"
#include "resolver/recursive.h"
#include "resolver/refresh_daemon.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/retry.h"
#include "sim/simulator.h"
#include "topo/deployment.h"
#include "topo/topology.h"
#include "util/result.h"
#include "util/rng.h"
#include "zone/evolution.h"
#include "zone/zone_snapshot.h"

namespace rootless {
namespace {

using sim::FaultInjector;
using sim::FaultPlan;
using sim::JitteredBackoff;
using sim::RetryPolicy;
using sim::RetrySchedule;
using sim::SimTime;

// ------------------------------------------------------------ retry policy

TEST(RetryPolicy, FirstAttemptNeverWaits) {
  RetryPolicy p;
  EXPECT_EQ(p.BackoffBeforeAttempt(1), 0);
}

TEST(RetryPolicy, ExponentialProgression) {
  RetryPolicy p{.max_attempts = 10,
                .initial_backoff = 100 * sim::kMillisecond,
                .backoff_multiplier = 2.0,
                .max_backoff = 60 * sim::kSecond};
  EXPECT_EQ(p.BackoffBeforeAttempt(2), 100 * sim::kMillisecond);
  EXPECT_EQ(p.BackoffBeforeAttempt(3), 200 * sim::kMillisecond);
  EXPECT_EQ(p.BackoffBeforeAttempt(4), 400 * sim::kMillisecond);
  EXPECT_EQ(p.BackoffBeforeAttempt(5), 800 * sim::kMillisecond);
}

TEST(RetryPolicy, BackoffSaturatesAtMax) {
  RetryPolicy p{.max_attempts = 64,
                .initial_backoff = 1 * sim::kSecond,
                .backoff_multiplier = 4.0,
                .max_backoff = 10 * sim::kSecond};
  EXPECT_EQ(p.BackoffBeforeAttempt(3), 4 * sim::kSecond);
  EXPECT_EQ(p.BackoffBeforeAttempt(4), 10 * sim::kSecond);
  // Far past saturation the doubling loop must not overflow.
  EXPECT_EQ(p.BackoffBeforeAttempt(60), 10 * sim::kSecond);
}

TEST(RetryPolicy, NonePolicyMakesOneAttempt) {
  constexpr RetryPolicy p = RetryPolicy::None();
  EXPECT_EQ(p.max_attempts, 1);
  RetrySchedule schedule(p);
  EXPECT_TRUE(schedule.CanAttempt());
  util::Rng rng(1);
  EXPECT_EQ(schedule.NextDelay(rng), 0);
  EXPECT_FALSE(schedule.CanAttempt());
}

TEST(RetryPolicy, JitteredBackoffStaysInBand) {
  RetryPolicy p{.max_attempts = 8,
                .initial_backoff = 1 * sim::kSecond,
                .backoff_multiplier = 2.0,
                .max_backoff = 60 * sim::kSecond,
                .jitter = 0.5};
  util::Rng rng(7);
  const SimTime base = p.BackoffBeforeAttempt(3);  // 2 s
  const SimTime span = base / 2;
  std::set<SimTime> seen;
  for (int i = 0; i < 200; ++i) {
    const SimTime d = JitteredBackoff(p, 3, rng);
    EXPECT_GE(d, base - span);
    EXPECT_LE(d, base + span);
    seen.insert(d);
  }
  // The draws must actually spread, not collapse to the base.
  EXPECT_GT(seen.size(), 50u);
}

TEST(RetryPolicy, ZeroJitterIsDeterministic) {
  RetryPolicy p{.max_attempts = 4, .initial_backoff = 300 * sim::kMillisecond};
  util::Rng rng(9);
  EXPECT_EQ(JitteredBackoff(p, 2, rng), 300 * sim::kMillisecond);
  // No randomness may be consumed when jitter is off.
  util::Rng untouched(9);
  EXPECT_EQ(rng.Below(1000), untouched.Below(1000));
}

TEST(RetrySchedule, BudgetExhaustion) {
  RetryPolicy p{.max_attempts = 3, .initial_backoff = 0};
  RetrySchedule schedule(p);
  util::Rng rng(3);
  int attempts = 0;
  while (schedule.CanAttempt()) {
    schedule.NextDelay(rng);
    ++attempts;
  }
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(schedule.attempts_started(), 3);
  // Drawing past the budget is a contract violation.
  EXPECT_THROW(schedule.NextDelay(rng), std::logic_error);
}

TEST(RetrySchedule, SameSeedSameSchedule) {
  RetryPolicy p{.max_attempts = 6,
                .initial_backoff = 250 * sim::kMillisecond,
                .backoff_multiplier = 2.0,
                .max_backoff = 8 * sim::kSecond,
                .jitter = 0.4};
  std::vector<SimTime> a, b;
  for (auto* out : {&a, &b}) {
    RetrySchedule schedule(p);
    util::Rng rng(0xBEEF);
    while (schedule.CanAttempt()) out->push_back(schedule.NextDelay(rng));
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a[0], 0);
}

// ---------------------------------------------------------- fault injector

TEST(FaultInjector, CertainLossDropsEverything) {
  FaultPlan plan;
  plan.LossEverywhere(1.0);
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1, 2, 3};
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(inj.OnSend(1, 2, i, payload).drop);
  }
  EXPECT_EQ(inj.stats().drops_loss, 20u);
}

TEST(FaultInjector, LinkRulesMatchEndpoints) {
  FaultPlan plan;
  plan.Loss(1, 2, 1.0);  // only the 1 -> 2 direction
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1};
  EXPECT_TRUE(inj.OnSend(1, 2, 0, payload).drop);
  EXPECT_FALSE(inj.OnSend(2, 1, 0, payload).drop);
  EXPECT_FALSE(inj.OnSend(3, 2, 0, payload).drop);
}

TEST(FaultInjector, OutageWindowCutsBothDirections) {
  FaultPlan plan;
  plan.Outage(5, 100, 200);
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1};
  EXPECT_FALSE(inj.NodeDown(5, 99));
  EXPECT_TRUE(inj.NodeDown(5, 100));
  EXPECT_TRUE(inj.NodeDown(5, 199));
  EXPECT_FALSE(inj.NodeDown(5, 200));
  EXPECT_TRUE(inj.OnSend(1, 5, 150, payload).drop);   // toward the node
  EXPECT_TRUE(inj.OnSend(5, 1, 150, payload).drop);   // from the node
  EXPECT_FALSE(inj.OnSend(1, 5, 250, payload).drop);  // after recovery
  EXPECT_FALSE(inj.OnSend(1, 2, 150, payload).drop);  // unrelated link
  EXPECT_EQ(inj.stats().drops_outage, 2u);
}

TEST(FaultInjector, CrashWithoutRestartIsPermanent) {
  FaultPlan plan;
  plan.CrashRestart(7, 50, -1);
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1};
  EXPECT_FALSE(inj.OnSend(1, 7, 49, payload).drop);
  EXPECT_TRUE(inj.OnSend(1, 7, 50, payload).drop);
  EXPECT_TRUE(inj.OnSend(7, 1, 1'000'000'000, payload).drop);
  EXPECT_TRUE(inj.NodeDown(7, 1'000'000'000));
  EXPECT_EQ(inj.stats().drops_crash, 2u);
}

TEST(FaultInjector, CrashRestartComesBack) {
  FaultPlan plan;
  plan.CrashRestart(7, 50, 80);
  FaultInjector inj(std::move(plan));
  EXPECT_TRUE(inj.NodeDown(7, 60));
  EXPECT_FALSE(inj.NodeDown(7, 80));
}

TEST(FaultInjector, PartitionSplitsGroupsOnly) {
  FaultPlan plan;
  plan.Partition2({1, 2}, {3, 4}, 10, 20);
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1};
  EXPECT_TRUE(inj.Partitioned(1, 3, 15));
  EXPECT_TRUE(inj.Partitioned(4, 2, 15));
  EXPECT_FALSE(inj.Partitioned(1, 2, 15));   // same side
  EXPECT_FALSE(inj.Partitioned(1, 3, 25));   // healed
  EXPECT_FALSE(inj.Partitioned(1, 9, 15));   // outsider unaffected
  EXPECT_TRUE(inj.OnSend(1, 3, 15, payload).drop);
  EXPECT_FALSE(inj.OnSend(1, 2, 15, payload).drop);
  EXPECT_FALSE(inj.OnSend(1, 9, 15, payload).drop);
  EXPECT_EQ(inj.stats().drops_partition, 1u);
}

TEST(FaultInjector, CorruptionMutatesPayload) {
  FaultPlan plan;
  plan.Corrupt(FaultPlan::kAnyNode, FaultPlan::kAnyNode, 1.0);
  FaultInjector inj(std::move(plan));
  const util::Bytes original(64, 0xAB);
  util::Bytes payload = original;
  const auto verdict = inj.OnSend(1, 2, 0, payload);
  EXPECT_FALSE(verdict.drop);  // corruption delivers damaged bytes
  EXPECT_NE(payload, original);
  EXPECT_EQ(payload.size(), original.size());
  EXPECT_EQ(inj.stats().corruptions, 1u);
}

TEST(FaultInjector, JitterAddsBoundedLatency) {
  FaultPlan plan;
  plan.JitterEverywhere(5 * sim::kMillisecond);
  FaultInjector inj(std::move(plan));
  util::Bytes payload{1};
  bool any_extra = false;
  for (int i = 0; i < 100; ++i) {
    const auto verdict = inj.OnSend(1, 2, i, payload);
    EXPECT_FALSE(verdict.drop);
    EXPECT_GE(verdict.extra_latency, 0);
    EXPECT_LE(verdict.extra_latency, 5 * sim::kMillisecond);
    any_extra = any_extra || verdict.extra_latency > 0;
  }
  EXPECT_TRUE(any_extra);
  EXPECT_EQ(inj.stats().jitter_events, 100u);
}

TEST(FaultInjector, SameSeedSameVerdicts) {
  auto run = [](std::vector<int>& drops, std::vector<SimTime>& delays) {
    FaultPlan plan;
    plan.seed = 1234;
    plan.LossEverywhere(0.3).JitterEverywhere(2 * sim::kMillisecond);
    FaultInjector inj(std::move(plan));
    util::Bytes payload{1, 2, 3, 4};
    for (int i = 0; i < 300; ++i) {
      const auto verdict = inj.OnSend(i % 5, (i + 1) % 5, i, payload);
      drops.push_back(verdict.drop ? 1 : 0);
      delays.push_back(verdict.extra_latency);
    }
  };
  std::vector<int> drops_a, drops_b;
  std::vector<SimTime> delays_a, delays_b;
  run(drops_a, delays_a);
  run(drops_b, delays_b);
  EXPECT_EQ(drops_a, drops_b);
  EXPECT_EQ(delays_a, delays_b);
}

// --------------------------------------- end-to-end resolver determinism

struct LossyRunOutcome {
  int ok = 0;
  resolver::ResolverStats resolver;
  sim::FaultStats faults;
};

LossyRunOutcome RunLossyResolverScenario() {
  sim::Simulator sim;
  sim::Network net(sim, 99);
  topo::Topology registry;
  net.set_latency_fn(registry.LatencyFn());

  sim::FaultPlan plan;
  plan.seed = 99;
  plan.LossEverywhere(0.2).JitterEverywhere(3 * sim::kMillisecond);
  sim::FaultInjector faults(std::move(plan));
  net.set_fault_injector(&faults);

  const zone::RootZoneModel zone_model;
  auto root_zone =
      std::make_shared<zone::Zone>(zone_model.Snapshot({2018, 4, 11}));
  const zone::SnapshotPtr snapshot = zone::ZoneSnapshot::Build(*root_zone);
  rootsrv::RootServerFleet fleet(net, registry, snapshot);
  rootsrv::TldFarm farm(net, registry, *snapshot, 3);

  resolver::ResolverConfig config;
  config.mode = resolver::RootMode::kRootServers;
  config.seed = 99;
  config.retry = sim::RetryPolicy{.max_attempts = 4,
                                  .attempt_timeout = 2 * sim::kSecond,
                                  .initial_backoff = 100 * sim::kMillisecond,
                                  .backoff_multiplier = 2.0,
                                  .max_backoff = 5 * sim::kSecond,
                                  .jitter = 0.3};
  const topo::GeoPoint where{40.71, -74.0};
  resolver::RecursiveResolver r(sim, net, {config, where, nullptr, &registry});
  r.SetRootFleet(&fleet);
  r.SetTldFarm(&farm);

  std::vector<std::string> tlds;
  for (const auto& child : root_zone->DelegatedChildren())
    tlds.push_back(child.tld());

  LossyRunOutcome out;
  for (int i = 0; i < 60; ++i) {
    const std::string host =
        "h" + std::to_string(i) + ".example." + tlds[i % tlds.size()] + ".";
    auto name = dns::Name::Parse(host);
    r.Resolve(*name, dns::RRType::kA,
              [&](const resolver::ResolutionResult& rr) {
                if (!rr.failed) ++out.ok;
              });
    sim.Run();
  }
  out.resolver = r.stats();
  out.faults = faults.stats();
  return out;
}

TEST(FaultDeterminism, SameSeedSameScheduleAndStats) {
  const LossyRunOutcome a = RunLossyResolverScenario();
  const LossyRunOutcome b = RunLossyResolverScenario();
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.resolver.resolutions, b.resolver.resolutions);
  EXPECT_EQ(a.resolver.root_transactions, b.resolver.root_transactions);
  EXPECT_EQ(a.resolver.tld_transactions, b.resolver.tld_transactions);
  EXPECT_EQ(a.resolver.timeouts, b.resolver.timeouts);
  EXPECT_EQ(a.resolver.failures, b.resolver.failures);
  EXPECT_EQ(a.resolver.retries, b.resolver.retries);
  EXPECT_EQ(a.faults.drops_loss, b.faults.drops_loss);
  EXPECT_EQ(a.faults.jitter_events, b.faults.jitter_events);
  // The injected loss must actually have bitten, and the retry policy must
  // have fired — otherwise this test exercises nothing.
  EXPECT_GT(a.faults.drops_loss, 0u);
  EXPECT_GT(a.resolver.retries, 0u);
  EXPECT_GT(a.ok, 0);
}

// ----------------------------------------- coded errors on distrib APIs

TEST(CodedErrors, FetchServiceOutageReportsUnreachable) {
  sim::Simulator sim;
  const zone::RootZoneModel model;
  const zone::SnapshotPtr snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));
  distrib::ZoneFetchService service(
      sim, {.config = {}, .provider = [&]() { return snapshot; }});
  service.AddOutage(0, sim::kHour);
  bool called = false;
  service.Fetch([&](util::Result<zone::SnapshotPtr> result) {
    called = true;
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code(), ErrorCode::kUnreachable);
  });
  sim.Run();
  EXPECT_TRUE(called);
}

TEST(CodedErrors, FetchServiceRetriesThroughShortOutage) {
  sim::Simulator sim;
  const zone::RootZoneModel model;
  const zone::SnapshotPtr snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));
  distrib::ZoneFetchService service(
      sim,
      {.config = {.retry = sim::RetryPolicy{.max_attempts = 5,
                                            .initial_backoff = sim::kMinute}},
       .provider = [&]() { return snapshot; }});
  // Outage clears while the retry budget still has attempts left.
  service.AddOutage(0, 90 * sim::kSecond);
  bool ok = false;
  service.Fetch([&](util::Result<zone::SnapshotPtr> result) {
    ok = result.ok();
  });
  sim.Run();
  EXPECT_TRUE(ok);
  EXPECT_GT(service.stats().retries, 0u);
  EXPECT_GT(service.stats().failures, 0u);
}

TEST(CodedErrors, AxfrTimeoutAgainstDownedServer) {
  sim::Simulator sim;
  sim::Network net(sim, 5);
  const zone::RootZoneModel model;
  const zone::SnapshotPtr snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));
  distrib::AxfrServer server(net, [&]() { return snapshot; });
  sim::FaultPlan plan;
  plan.CrashRestart(server.node(), 0, -1);
  sim::FaultInjector faults(std::move(plan));
  net.set_fault_injector(&faults);
  distrib::AxfrClient client(
      sim, net,
      distrib::AxfrClient::Options{
          .retry = {.max_attempts = 2, .attempt_timeout = sim::kSecond,
                    .initial_backoff = 0}});
  bool called = false;
  client.Fetch(server.node(), 0,
               [&](util::Result<zone::SnapshotPtr> result) {
                 called = true;
                 ASSERT_FALSE(result.ok());
                 EXPECT_EQ(result.error().code(), ErrorCode::kTimeout);
               });
  sim.RunUntil(10 * sim::kMinute);
  EXPECT_TRUE(called);
}

TEST(CodedErrors, DiffChannelTruncationAndStaleChains) {
  const zone::RootZoneModel model;
  const zone::SnapshotPtr v1 =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));
  const zone::SnapshotPtr v2 =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 13}));
  distrib::DiffPublisher publisher(v1);
  publisher.Publish(v2);

  {
    // Truncated diff payload.
    distrib::DiffSubscriber sub(v1);
    auto update = publisher.UpdatesSince(sub.serial());
    ASSERT_EQ(update.kind, distrib::DiffPublisher::Update::Kind::kDiffs);
    update.payload.resize(update.payload.size() / 2);
    const util::Status status = sub.Apply(update);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code(), ErrorCode::kTruncated);
  }
  {
    // Replaying a chain the subscriber has already applied: the embedded
    // from-serial no longer matches ours.
    distrib::DiffSubscriber sub(v1);
    const auto update = publisher.UpdatesSince(sub.serial());
    ASSERT_EQ(update.kind, distrib::DiffPublisher::Update::Kind::kDiffs);
    ASSERT_TRUE(sub.Apply(update).ok());
    const util::Status status = sub.Apply(update);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.error().code(), ErrorCode::kStale);
  }
}

// -------------------------------------- serve-stale + fallback ladder

TEST(ServeStale, LadderFallsThroughAndServesStale) {
  sim::Simulator sim;
  const zone::RootZoneModel model;
  const zone::SnapshotPtr snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));

  // Rung 1 always fails; rung 2 fails during a long outage, then recovers.
  const sim::SimTime outage_end = 4 * sim::kDay;
  using FetchResult = resolver::RefreshDaemon::FetchResult;
  int diff_calls = 0;
  int full_calls = 0;
  resolver::RefreshConfig config;
  config.retry = sim::RetryPolicy{.max_attempts = 2,
                                  .initial_backoff = 10 * sim::kMinute};
  config.max_staleness = 36 * sim::kHour;
  resolver::RefreshDaemon daemon(
      sim,
      {config,
       {{"diff",
         [&](std::function<void(FetchResult)> done) {
           ++diff_calls;
           done(util::Error(ErrorCode::kUnreachable, "diff down"));
         }},
        {"full",
         [&](std::function<void(FetchResult)> done) {
           ++full_calls;
           if (sim.now() < outage_end) {
             done(util::Error(ErrorCode::kUnreachable, "mirror down"));
           } else {
             done(snapshot);
           }
         }}},
       [](zone::SnapshotPtr) {}});

  daemon.Start(snapshot);
  EXPECT_EQ(daemon.state(), resolver::ZoneState::kFresh);

  // Validity is 48 h; the first round starts at 42 h and every rung fails.
  sim.RunUntil(47 * sim::kHour);
  EXPECT_EQ(daemon.state(), resolver::ZoneState::kFresh);
  EXPECT_TRUE(daemon.zone_valid());

  // Past expiry but inside the 36 h serve-stale window.
  sim.RunUntil(50 * sim::kHour);
  EXPECT_EQ(daemon.state(), resolver::ZoneState::kStale);
  EXPECT_FALSE(daemon.zone_valid());
  EXPECT_TRUE(daemon.zone_usable());

  // Past the staleness window: the copy is unusable.
  sim.RunUntil(90 * sim::kHour);
  EXPECT_EQ(daemon.state(), resolver::ZoneState::kExpired);
  EXPECT_FALSE(daemon.zone_usable());
  EXPECT_GE(daemon.stats().hard_expirations, 1u);

  // After the mirror recovers the daemon refreshes and the copy is fresh
  // again.
  sim.RunUntil(6 * sim::kDay);
  EXPECT_EQ(daemon.state(), resolver::ZoneState::kFresh);
  const auto stats = daemon.stats();
  EXPECT_GE(stats.refreshes, 1u);
  // Each failing round: two attempts on "diff" (one retry), ladder step to
  // "full", two attempts there.
  EXPECT_GT(stats.retries, 0u);
  EXPECT_GT(stats.fallbacks, 0u);
  EXPECT_GE(stats.expirations, 1u);
  EXPECT_GT(stats.stale_time, 0);
  EXPECT_GT(diff_calls, 0);
  EXPECT_GT(full_calls, 0);
  EXPECT_EQ(stats.hard_expirations, 1u);  // counted once per lapse
}

}  // namespace
}  // namespace rootless
