// Remaining edge-path coverage: hints parsing failures, signed-zone
// serving through AuthServer, report rendering, evolution config bounds,
// and interceptor accounting.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/report.h"
#include "rootsrv/auth_server.h"
#include "sim/network.h"
#include "zone/evolution.h"
#include "zone/master_file.h"
#include "zone/root_hints.h"
#include "zone/zone_diff.h"
#include "zone/sign.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRClass;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

TEST(RootHintsEdge, FromRecordsRejectsEmptyAndIncomplete) {
  EXPECT_FALSE(zone::RootHints::FromRecords({}).ok());
  // NS without the matching A record.
  std::vector<dns::ResourceRecord> records;
  records.push_back({Name(), RRType::kNS, RRClass::kIN, 3600000,
                     dns::NsData{N("a.root-servers.net.")}});
  EXPECT_FALSE(zone::RootHints::FromRecords(records).ok());
}

TEST(RootHintsEdge, HintsFileParsesAsMasterFile) {
  // The hints serialization must round-trip through the zone parser, the
  // way real resolvers consume named.root.
  const auto hints = zone::RootHints::Standard();
  const std::string text = zone::SerializeMasterFile(hints.ToRecords());
  auto parsed = zone::ParseMasterFile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  auto rebuilt = zone::RootHints::FromRecords(*parsed);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().message();
  EXPECT_EQ(rebuilt->servers().size(), 13u);
}

TEST(AuthServerEdge, ServesSignedZoneWithDnssecSections) {
  util::Rng rng(9);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  zone::Zone plain;
  dns::SoaData soa;
  soa.minimum = 3600;
  ASSERT_TRUE(plain.AddRecord({Name(), RRType::kSOA, RRClass::kIN, 3600, soa})
                  .ok());
  ASSERT_TRUE(plain
                  .AddRecord({N("com."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("ns.nic.com.")}})
                  .ok());
  ASSERT_TRUE(plain
                  .AddRecord({N("com."), RRType::kDS, RRClass::kIN, 86400,
                              dns::DsData{1, 8, 2, {0xAB}}})
                  .ok());
  auto signed_zone =
      std::make_shared<zone::Zone>(zone::SignZone(plain, zsk, {0, 10000}));

  sim::Simulator sim;
  sim::Network net(sim, 2);
  rootsrv::AuthServer server(net, signed_zone, /*include_dnssec=*/true);

  // Referral carries DS + RRSIG(DS).
  const auto referral =
      server.Answer(dns::MakeQuery(1, N("www.x.com."), RRType::kA));
  bool has_ds = false, has_rrsig = false;
  for (const auto& rr : referral.authority) {
    has_ds |= rr.type == RRType::kDS;
    has_rrsig |= rr.type == RRType::kRRSIG;
  }
  EXPECT_TRUE(has_ds);
  EXPECT_TRUE(has_rrsig);

  // NXDOMAIN carries a signed covering NSEC.
  const auto denial =
      server.Answer(dns::MakeQuery(2, N("junk.bogus."), RRType::kA));
  EXPECT_EQ(denial.header.rcode, dns::RCode::kNXDomain);
  bool has_nsec = false;
  for (const auto& rr : denial.authority) has_nsec |= rr.type == RRType::kNSEC;
  EXPECT_TRUE(has_nsec);
}

TEST(InterceptorEdge, DropAndReplaceAreCounted) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  int delivered = 0;
  util::Bytes last;
  const sim::NodeId a = net.AddNode(nullptr);
  const sim::NodeId b = net.AddNode([&](const sim::Datagram& d) {
    ++delivered;
    last = d.payload;
  });
  int seen = 0;
  net.set_interceptor([&](const sim::Datagram& d) -> sim::InterceptVerdict {
    ++seen;
    if (d.payload[0] == 1) return sim::InterceptVerdict::Drop();
    if (d.payload[0] == 2) {
      return sim::InterceptVerdict::Replace(
          sim::Datagram{.src = d.src, .dst = d.dst, .payload = util::Bytes{99}});
    }
    return sim::InterceptVerdict::Pass();
  });
  net.Send(a, b, {1});  // dropped
  net.Send(a, b, {2});  // replaced
  net.Send(a, b, {3});  // passed
  sim.Run();
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.datagrams_intercepted(), 2u);
  EXPECT_EQ(last, (util::Bytes{3}));
}

TEST(EvolutionEdge, ExtremeConfigsStayConsistent) {
  // One-TLD world.
  zone::EvolutionConfig tiny;
  tiny.seed = 1;
  tiny.legacy_tld_count = 1;
  tiny.peak_tld_count = 1;
  tiny.rotating_tld_count = 0;
  const zone::RootZoneModel tiny_model(tiny);
  // Before the new-gTLD era only the single legacy TLD exists (the model
  // always schedules ".llc" and a post-ramp trickle later on).
  EXPECT_EQ(tiny_model.TldCountOn({2013, 1, 1}), 1);
  const zone::Zone z = tiny_model.Snapshot({2013, 1, 1});
  EXPECT_EQ(z.DelegatedChildren().size(), 1u);
  EXPECT_NE(z.soa(), nullptr);

  // Heavy churn still yields valid, parseable zones.
  zone::EvolutionConfig churny;
  churny.seed = 2;
  churny.legacy_tld_count = 30;
  churny.peak_tld_count = 40;
  churny.daily_churn_events = 100.0;
  const zone::RootZoneModel churny_model(churny);
  const zone::Zone day1 = churny_model.Snapshot({2019, 5, 1});
  const zone::Zone day2 = churny_model.Snapshot({2019, 5, 2});
  const auto diff = zone::DiffZones(day1, day2);
  EXPECT_GT(diff.change_count(), 1u);
  auto reparsed = zone::ParseMasterFile(
      zone::SerializeMasterFile(day2.AllRecords()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), day2.record_count());
}

TEST(ReportEdge, SeriesAndBannerHandleEmptyAndZero) {
  analysis::TimeSeries empty;
  const std::string out = analysis::RenderSeries(empty, "nothing");
  EXPECT_NE(out.find("(no data)"), std::string::npos);

  analysis::TimeSeries zeros;
  zeros.Set({2019, 1, 15}, 0.0);
  EXPECT_FALSE(analysis::RenderSeries(zeros, "zeros").empty());

  EXPECT_FALSE(analysis::Banner("").empty());
}

TEST(ZoneSignEdge, ResigningAfterChangeRevalidates) {
  util::Rng rng(12);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  crypto::KeyStore store;
  store.AddKey(zsk);

  zone::EvolutionConfig config;
  config.legacy_tld_count = 10;
  config.peak_tld_count = 12;
  const zone::RootZoneModel model(config);
  const zone::Zone v1 = model.Snapshot({2019, 4, 1});
  const zone::Zone v2 = model.Snapshot({2019, 4, 10});

  const zone::Zone signed1 = zone::SignZone(v1, zsk, {0, 10000});
  const zone::Zone signed2 = zone::SignZone(v2, zsk, {0, 10000});
  EXPECT_TRUE(zone::ValidateSignedZone(signed1, zsk.dnskey, store, 500).ok());
  EXPECT_TRUE(zone::ValidateSignedZone(signed2, zsk.dnskey, store, 500).ok());
  // Mixing v2 data with v1 signatures must fail: splice one v2 RRset in.
  zone::Zone frankenstein = signed1;
  const auto children = v2.DelegatedChildren();
  const dns::RRset* donor = v2.Find(children.front(), RRType::kNS);
  ASSERT_NE(donor, nullptr);
  dns::RRset mutated = *donor;
  mutated.rdatas.push_back(dns::NsData{N("ns-injected.example.")});
  ASSERT_TRUE(frankenstein.RemoveRRset(mutated.key()));
  ASSERT_TRUE(frankenstein.AddRRset(mutated).ok());
  EXPECT_FALSE(
      zone::ValidateSignedZone(frankenstein, zsk.dnskey, store, 500).ok());
}

}  // namespace
}  // namespace rootless
