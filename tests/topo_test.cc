// Tests for geography, anycast catchments, and the Fig-2 deployment model.
#include <gtest/gtest.h>

#include <vector>

#include "topo/deployment.h"
#include "topo/geo.h"
#include "topo/geo_registry.h"
#include "topo/topology.h"

namespace rootless::topo {
namespace {

TEST(Geo, GreatCircleKnownDistances) {
  // New York <-> London is ~5,570 km.
  const GeoPoint nyc{40.71, -74.0};
  const GeoPoint london{51.51, -0.13};
  const double km = GreatCircleKm(nyc, london);
  EXPECT_GT(km, 5300);
  EXPECT_LT(km, 5800);

  EXPECT_NEAR(GreatCircleKm(nyc, nyc), 0.0, 1e-9);
  // Antipodal points: half the circumference, ~20,000 km.
  const double anti = GreatCircleKm({0, 0}, {0, 180});
  EXPECT_NEAR(anti, 20015, 50);
}

TEST(Geo, LatencyGrowsWithDistance) {
  EXPECT_LT(LatencyForDistanceKm(100), LatencyForDistanceKm(5000));
  // Base latency even at zero distance.
  EXPECT_GT(LatencyForDistanceKm(0), 0);
  // Transatlantic one-way should be tens of milliseconds.
  const sim::SimTime t = LatencyForDistanceKm(5600);
  EXPECT_GT(t, 20 * sim::kMillisecond);
  EXPECT_LT(t, 80 * sim::kMillisecond);
}

TEST(Geo, SampledPointsAreValid) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const GeoPoint p = SamplePopulationPoint(rng);
    EXPECT_GE(p.latitude_deg, -90);
    EXPECT_LE(p.latitude_deg, 90);
    EXPECT_GE(p.longitude_deg, -180);
    EXPECT_LT(p.longitude_deg, 180);
    const GeoPoint u = SampleUniformPoint(rng);
    EXPECT_GE(u.latitude_deg, -90);
    EXPECT_LE(u.latitude_deg, 90);
  }
}

TEST(Geo, SameSiteIsToleranceNotExactEquality) {
  const GeoPoint paris{48.8566, 2.3522};
  // Bit-identical points are the same site, as are points within the
  // ~110 m epsilon — e.g. the same coordinates arrived at through a
  // different arithmetic path.
  EXPECT_TRUE(SameSite(paris, paris));
  EXPECT_TRUE(SameSite(paris, {48.8566 + 1e-7, 2.3522 - 1e-7}));
  EXPECT_TRUE(SameSite(paris, {48.8569, 2.3525}));
  // A few hundred metres away is a different site.
  EXPECT_FALSE(SameSite(paris, {48.86, 2.36}));
  EXPECT_FALSE(SameSite(paris, {48.8566, 2.36}));
  // Longitude wraps at the antimeridian: 179.9995 and -179.9995 are ~110 m
  // apart, not 360 degrees.
  EXPECT_TRUE(SameSite({10, 179.99995}, {10, -179.99995}));
  EXPECT_FALSE(SameSite({10, 179.5}, {10, -179.5}));
}

TEST(Topology, InstancesMatchDeploymentForDate) {
  const Topology topology;
  const DeploymentModel model;
  const auto expected = model.AllInstancesOn({2018, 4, 11});
  ASSERT_EQ(topology.instances().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(topology.instances()[i].letter, expected[i].letter) << i;
  }
  // Every letter resolves to a non-empty instance set.
  std::size_t total = 0;
  for (char letter = 'a'; letter <= 'm'; ++letter) {
    EXPECT_FALSE(topology.letter_instances(letter).empty()) << letter;
    total += topology.letter_instances(letter).size();
  }
  EXPECT_EQ(total, expected.size());
}

TEST(Topology, DefaultRegionWeightsSumToOne) {
  const auto& regions = DefaultRegions();
  ASSERT_EQ(regions.size(), 8u);
  double total = 0;
  for (const auto& r : regions) total += r.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
  const Topology topology;
  EXPECT_EQ(topology.region_count(), regions.size());
  EXPECT_EQ(topology.RegionIndexOf("southeast-asia"),
            topology.RegionIndexOf("southeast-asia"));
  EXPECT_GE(topology.RegionIndexOf("europe"), 0);
  EXPECT_EQ(topology.RegionIndexOf("atlantis"), -1);
}

TEST(Topology, PlacementIsAPureFunctionOfSeedAndId) {
  // Two topologies built from equal options agree on every placement and
  // every catchment, regardless of query order — the property that makes
  // sharded runs bit-identical for any shard/thread layout.
  const Topology a;
  const Topology b;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const auto sa = a.PlaceResolver(id);
    const auto sb = b.PlaceResolver(id);
    EXPECT_EQ(sa.region, sb.region) << id;
    EXPECT_DOUBLE_EQ(sa.location.latitude_deg, sb.location.latitude_deg);
    EXPECT_DOUBLE_EQ(sa.location.longitude_deg, sb.location.longitude_deg);
    EXPECT_GE(sa.region, 0);
    EXPECT_LT(static_cast<std::size_t>(sa.region), a.region_count());
  }
  // Different seeds genuinely move resolvers.
  const Topology other({.seed = 4242});
  int moved = 0;
  for (std::uint64_t id = 0; id < 64; ++id) {
    if (!SameSite(a.PlaceResolver(id).location,
                  other.PlaceResolver(id).location)) {
      ++moved;
    }
  }
  EXPECT_GT(moved, 32);
}

TEST(Topology, CatchmentsAreOrderIndependent) {
  const Topology a;
  const Topology b;
  const std::uint64_t kIds = 48;
  // Walk the id space in K-strided interleavings (the orders K-shard runs
  // would issue) and require the exact instance assignment the sequential
  // walk produces.
  std::vector<std::size_t> reference;
  for (std::uint64_t id = 0; id < kIds; ++id) {
    const GeoPoint where = a.PlaceResolver(id).location;
    reference.push_back(a.CatchmentAt(where, id, 'f').instance);
  }
  for (const std::uint64_t stride : {2u, 8u}) {
    for (std::uint64_t start = 0; start < stride; ++start) {
      for (std::uint64_t id = start; id < kIds; id += stride) {
        const GeoPoint where = b.PlaceResolver(id).location;
        EXPECT_EQ(b.CatchmentAt(where, id, 'f').instance,
                  reference[static_cast<std::size_t>(id)])
            << "id " << id << " stride " << stride;
      }
    }
  }
}

// Ideal-nearest instance of letter 'f' — the routing a perfectly tuned BGP
// would give; the catchment model perturbs away from this.
std::size_t IdealNearestF(const Topology& t, const GeoPoint& where) {
  const auto& candidates = t.letter_instances('f');
  std::size_t best = candidates[0];
  double best_km = GreatCircleKm(t.instances()[best].location, where);
  for (std::size_t k = 1; k < candidates.size(); ++k) {
    const double km =
        GreatCircleKm(t.instances()[candidates[k]].location, where);
    if (km < best_km) {
      best_km = km;
      best = candidates[k];
    }
  }
  return best;
}

TEST(Topology, CatchmentInflatesButNeverShrinksDistance) {
  const Topology topology;
  util::Rng rng(11);
  int diverged = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    const GeoPoint where = SamplePopulationPoint(rng);
    const auto c = topology.CatchmentAt(where, id, 'f');
    EXPECT_GE(c.effective_km, c.geo_km);
    // The chosen instance is a real instance of the letter.
    EXPECT_EQ(topology.instances()[c.instance].letter, 'f');
    // BGP perturbation must sometimes pick a non-nearest instance (the
    // F-ROOT study's observation); count divergences from ideal routing.
    if (c.instance != IdealNearestF(topology, where)) ++diverged;
  }
  EXPECT_GT(diverged, 10);
  // With inflation disabled, catchments are exactly nearest-by-geography.
  const Topology ideal_topology({.bgp_inflation = 0, .poor_path_share = 0});
  for (std::uint64_t id = 0; id < 50; ++id) {
    const GeoPoint where = SamplePopulationPoint(rng);
    const auto c = ideal_topology.CatchmentAt(where, id, 'f');
    EXPECT_EQ(c.instance, IdealNearestF(ideal_topology, where)) << id;
  }
}

TEST(Topology, RegionRttGoldenBands) {
  // Calibration against the F-ROOT Southeast Asia study's regimes: regions
  // that host many instances see short best-letter RTTs; Southeast Asia
  // (deliberately absent from the instance-placement table) and Africa sit
  // in the poor-coverage regime with a long inflated tail.
  const Topology topology;
  const auto europe = topology.RegionRootRtt(topology.RegionIndexOf("europe"));
  const auto sea =
      topology.RegionRootRtt(topology.RegionIndexOf("southeast-asia"));
  EXPECT_LT(europe.p50, 60 * sim::kMillisecond);
  EXPECT_GT(sea.p90, europe.p90);
  EXPECT_GT(sea.p50, europe.p50);
  // Deployment growth helps: the thin 2015 deployment serves every region
  // no better (and the world overall worse) than the 2018 one.
  const Topology early({.date = {2015, 3, 15}});
  double early_total = 0;
  double late_total = 0;
  for (std::size_t g = 0; g < topology.region_count(); ++g) {
    early_total += early.RegionRootRtt(static_cast<int>(g)).mean_us;
    late_total += topology.RegionRootRtt(static_cast<int>(g)).mean_us;
  }
  EXPECT_GT(early_total, late_total);
  // Distribution sanity: percentiles are ordered and positive.
  EXPECT_GT(europe.p10, 0);
  EXPECT_LE(europe.p10, europe.p50);
  EXPECT_LE(europe.p50, europe.p90);
  EXPECT_LE(europe.p90, europe.p99);
}

TEST(Topology, NodePlacementDrivesLatency) {
  Topology topology;
  topology.PlaceNode(0, {40.71, -74.0});
  topology.PlaceNode(1, {51.51, -0.13});
  topology.PlaceNode(2, {40.8, -74.1});
  EXPECT_GT(topology.Latency(0, 1), topology.Latency(0, 2));
  EXPECT_EQ(topology.Latency(0, 0), Topology::kLoopbackLatency);
  // Co-location uses the SameSite tolerance, not exact float equality.
  topology.PlaceNode(3, {40.71 + 1e-7, -74.0 - 1e-7});
  EXPECT_EQ(topology.Latency(0, 3), Topology::kLoopbackLatency);
}

// GeoRegistry is a deprecated adapter over topo::Topology, kept for one
// release; these tests pin the adapter's pass-through behaviour.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(GeoRegistry, AdapterForwardsToTopology) {
  GeoRegistry registry;
  registry.SetLocation(0, {40.71, -74.0});
  const GeoPoint p = registry.LocationOf(0);
  EXPECT_TRUE(SameSite(p, {40.71, -74.0}));
}

TEST(GeoRegistry, LoopbackForSameNode) {
  GeoRegistry registry;
  registry.SetLocation(0, {10, 20});
  EXPECT_EQ(registry.Latency(0, 0), GeoRegistry::kLoopbackLatency);
}

TEST(GeoRegistry, ColocatedNodesGetLoopback) {
  GeoRegistry registry;
  registry.SetLocation(0, {10, 20});
  registry.SetLocation(1, {10, 20});
  EXPECT_EQ(registry.Latency(0, 1), GeoRegistry::kLoopbackLatency);
}

TEST(GeoRegistry, DistanceDrivesLatency) {
  GeoRegistry registry;
  registry.SetLocation(0, {40.71, -74.0});
  registry.SetLocation(1, {51.51, -0.13});
  registry.SetLocation(2, {40.8, -74.1});
  EXPECT_GT(registry.Latency(0, 1), registry.Latency(0, 2));
}

#pragma GCC diagnostic pop

TEST(Deployment, OperatorsMatchPaper) {
  const auto& ops = RootOperators();
  EXPECT_EQ(ops.size(), 13u);
  // Verisign operates both a-root and j-root (the paper's footnote 1).
  EXPECT_STREQ(ops[IndexForLetter('a')].organization, "Verisign");
  EXPECT_STREQ(ops[IndexForLetter('j')].organization, "Verisign");
}

TEST(Deployment, TotalMatchesPaperAnchors) {
  const DeploymentModel model;
  // root-servers.org reported 985 instances on 2019-05-15.
  EXPECT_EQ(model.TotalInstancesOn({2019, 5, 15}), 985);
  // Roughly 450 in March 2015 (start of Fig 2).
  const int start = model.TotalInstancesOn({2015, 3, 15});
  EXPECT_GT(start, 400);
  EXPECT_LT(start, 500);
}

TEST(Deployment, GrowthIsMonotonicOverall) {
  const DeploymentModel model;
  int prev = 0;
  for (int year = 2015; year <= 2019; ++year) {
    const int count = model.TotalInstancesOn({year, 3, 15});
    EXPECT_GE(count, prev) << year;
    prev = count;
  }
}

TEST(Deployment, SmallLettersStaySmall) {
  // Paper: at most six instances for b, g, h, m-root.
  const DeploymentModel model;
  for (char letter : {'b', 'g', 'h', 'm'}) {
    EXPECT_LE(model.InstanceCountOn(letter, {2019, 5, 15}), 6) << letter;
  }
}

TEST(Deployment, LargeLettersExceed100) {
  // Paper: over 100 instances for d, e, f, j, l-root.
  const DeploymentModel model;
  for (char letter : {'d', 'e', 'f', 'j', 'l'}) {
    EXPECT_GT(model.InstanceCountOn(letter, {2019, 5, 15}), 100) << letter;
  }
}

TEST(Deployment, ERootJumpJan2016) {
  const DeploymentModel model;
  const int before = model.InstanceCountOn('e', {2016, 1, 15});
  const int after = model.InstanceCountOn('e', {2016, 2, 15});
  EXPECT_EQ(after - before, 45);  // the paper's documented jump
}

TEST(Deployment, FRootJumpApr2017) {
  const DeploymentModel model;
  const int before = model.InstanceCountOn('f', {2017, 4, 15});
  const int after = model.InstanceCountOn('f', {2017, 5, 15});
  EXPECT_EQ(after - before, 81);
}

TEST(Deployment, NovDec2017Jumps) {
  const DeploymentModel model;
  EXPECT_EQ(model.InstanceCountOn('e', {2017, 12, 15}) -
                model.InstanceCountOn('e', {2017, 11, 15}),
            85);
  EXPECT_EQ(model.InstanceCountOn('f', {2017, 12, 15}) -
                model.InstanceCountOn('f', {2017, 11, 15}),
            43);
}

TEST(Deployment, SitesAreStablePrefixes) {
  const DeploymentModel model;
  const auto early = model.SitesOn('f', {2016, 6, 15});
  const auto late = model.SitesOn('f', {2019, 5, 15});
  ASSERT_LT(early.size(), late.size());
  for (std::size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i], late[i]) << i;
  }
}

TEST(Deployment, AllInstancesMatchesTotals) {
  const DeploymentModel model;
  const util::CivilDate date{2018, 4, 11};
  EXPECT_EQ(model.AllInstancesOn(date).size(),
            static_cast<std::size_t>(model.TotalInstancesOn(date)));
}

TEST(Deployment, NearestInstancePicksCloseSite) {
  const DeploymentModel model;
  const auto instances = model.AllInstancesOn({2019, 5, 15});
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint client = SamplePopulationPoint(rng);
    const std::size_t best = NearestInstance(instances, client);
    const double best_km = GreatCircleKm(instances[best].location, client);
    for (std::size_t k = 0; k < instances.size(); k += 17) {
      EXPECT_LE(best_km, GreatCircleKm(instances[k].location, client) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace rootless::topo
