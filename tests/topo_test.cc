// Tests for geography, anycast catchments, and the Fig-2 deployment model.
#include <gtest/gtest.h>

#include "topo/deployment.h"
#include "topo/geo.h"
#include "topo/geo_registry.h"

namespace rootless::topo {
namespace {

TEST(Geo, GreatCircleKnownDistances) {
  // New York <-> London is ~5,570 km.
  const GeoPoint nyc{40.71, -74.0};
  const GeoPoint london{51.51, -0.13};
  const double km = GreatCircleKm(nyc, london);
  EXPECT_GT(km, 5300);
  EXPECT_LT(km, 5800);

  EXPECT_NEAR(GreatCircleKm(nyc, nyc), 0.0, 1e-9);
  // Antipodal points: half the circumference, ~20,000 km.
  const double anti = GreatCircleKm({0, 0}, {0, 180});
  EXPECT_NEAR(anti, 20015, 50);
}

TEST(Geo, LatencyGrowsWithDistance) {
  EXPECT_LT(LatencyForDistanceKm(100), LatencyForDistanceKm(5000));
  // Base latency even at zero distance.
  EXPECT_GT(LatencyForDistanceKm(0), 0);
  // Transatlantic one-way should be tens of milliseconds.
  const sim::SimTime t = LatencyForDistanceKm(5600);
  EXPECT_GT(t, 20 * sim::kMillisecond);
  EXPECT_LT(t, 80 * sim::kMillisecond);
}

TEST(Geo, SampledPointsAreValid) {
  util::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const GeoPoint p = SamplePopulationPoint(rng);
    EXPECT_GE(p.latitude_deg, -90);
    EXPECT_LE(p.latitude_deg, 90);
    EXPECT_GE(p.longitude_deg, -180);
    EXPECT_LT(p.longitude_deg, 180);
    const GeoPoint u = SampleUniformPoint(rng);
    EXPECT_GE(u.latitude_deg, -90);
    EXPECT_LE(u.latitude_deg, 90);
  }
}

TEST(GeoRegistry, LoopbackForSameNode) {
  GeoRegistry registry;
  registry.SetLocation(0, {10, 20});
  EXPECT_EQ(registry.Latency(0, 0), GeoRegistry::kLoopbackLatency);
}

TEST(GeoRegistry, ColocatedNodesGetLoopback) {
  GeoRegistry registry;
  registry.SetLocation(0, {10, 20});
  registry.SetLocation(1, {10, 20});
  EXPECT_EQ(registry.Latency(0, 1), GeoRegistry::kLoopbackLatency);
}

TEST(GeoRegistry, DistanceDrivesLatency) {
  GeoRegistry registry;
  registry.SetLocation(0, {40.71, -74.0});
  registry.SetLocation(1, {51.51, -0.13});
  registry.SetLocation(2, {40.8, -74.1});
  EXPECT_GT(registry.Latency(0, 1), registry.Latency(0, 2));
}

TEST(Deployment, OperatorsMatchPaper) {
  const auto& ops = RootOperators();
  EXPECT_EQ(ops.size(), 13u);
  // Verisign operates both a-root and j-root (the paper's footnote 1).
  EXPECT_STREQ(ops[IndexForLetter('a')].organization, "Verisign");
  EXPECT_STREQ(ops[IndexForLetter('j')].organization, "Verisign");
}

TEST(Deployment, TotalMatchesPaperAnchors) {
  const DeploymentModel model;
  // root-servers.org reported 985 instances on 2019-05-15.
  EXPECT_EQ(model.TotalInstancesOn({2019, 5, 15}), 985);
  // Roughly 450 in March 2015 (start of Fig 2).
  const int start = model.TotalInstancesOn({2015, 3, 15});
  EXPECT_GT(start, 400);
  EXPECT_LT(start, 500);
}

TEST(Deployment, GrowthIsMonotonicOverall) {
  const DeploymentModel model;
  int prev = 0;
  for (int year = 2015; year <= 2019; ++year) {
    const int count = model.TotalInstancesOn({year, 3, 15});
    EXPECT_GE(count, prev) << year;
    prev = count;
  }
}

TEST(Deployment, SmallLettersStaySmall) {
  // Paper: at most six instances for b, g, h, m-root.
  const DeploymentModel model;
  for (char letter : {'b', 'g', 'h', 'm'}) {
    EXPECT_LE(model.InstanceCountOn(letter, {2019, 5, 15}), 6) << letter;
  }
}

TEST(Deployment, LargeLettersExceed100) {
  // Paper: over 100 instances for d, e, f, j, l-root.
  const DeploymentModel model;
  for (char letter : {'d', 'e', 'f', 'j', 'l'}) {
    EXPECT_GT(model.InstanceCountOn(letter, {2019, 5, 15}), 100) << letter;
  }
}

TEST(Deployment, ERootJumpJan2016) {
  const DeploymentModel model;
  const int before = model.InstanceCountOn('e', {2016, 1, 15});
  const int after = model.InstanceCountOn('e', {2016, 2, 15});
  EXPECT_EQ(after - before, 45);  // the paper's documented jump
}

TEST(Deployment, FRootJumpApr2017) {
  const DeploymentModel model;
  const int before = model.InstanceCountOn('f', {2017, 4, 15});
  const int after = model.InstanceCountOn('f', {2017, 5, 15});
  EXPECT_EQ(after - before, 81);
}

TEST(Deployment, NovDec2017Jumps) {
  const DeploymentModel model;
  EXPECT_EQ(model.InstanceCountOn('e', {2017, 12, 15}) -
                model.InstanceCountOn('e', {2017, 11, 15}),
            85);
  EXPECT_EQ(model.InstanceCountOn('f', {2017, 12, 15}) -
                model.InstanceCountOn('f', {2017, 11, 15}),
            43);
}

TEST(Deployment, SitesAreStablePrefixes) {
  const DeploymentModel model;
  const auto early = model.SitesOn('f', {2016, 6, 15});
  const auto late = model.SitesOn('f', {2019, 5, 15});
  ASSERT_LT(early.size(), late.size());
  for (std::size_t i = 0; i < early.size(); ++i) {
    EXPECT_EQ(early[i], late[i]) << i;
  }
}

TEST(Deployment, AllInstancesMatchesTotals) {
  const DeploymentModel model;
  const util::CivilDate date{2018, 4, 11};
  EXPECT_EQ(model.AllInstancesOn(date).size(),
            static_cast<std::size_t>(model.TotalInstancesOn(date)));
}

TEST(Deployment, NearestInstancePicksCloseSite) {
  const DeploymentModel model;
  const auto instances = model.AllInstancesOn({2019, 5, 15});
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const GeoPoint client = SamplePopulationPoint(rng);
    const std::size_t best = NearestInstance(instances, client);
    const double best_km = GreatCircleKm(instances[best].location, client);
    for (std::size_t k = 0; k < instances.size(); k += 17) {
      EXPECT_LE(best_km, GreatCircleKm(instances[k].location, client) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace rootless::topo
