// Robustness "fuzz" properties: every parser in the library must reject or
// accept arbitrary and mutated inputs without crashing, hanging, or reading
// out of bounds — malformed network input is data, not a programming error.
#include <gtest/gtest.h>

#include "distrib/diff_channel.h"
#include "rootsrv/auth_server.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "distrib/rsync.h"
#include "dns/message.h"
#include "util/rng.h"
#include "zone/evolution.h"
#include "zone/master_file.h"
#include "zone/rzc.h"
#include "zone/snapshot.h"
#include "zone/zone_snapshot.h"
#include "zone/zone_diff.h"

namespace rootless {
namespace {

util::Bytes RandomBytes(util::Rng& rng, std::size_t max_len) {
  util::Bytes out(rng.Below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Below(256));
  return out;
}

// Flip/insert/delete a few bytes of a valid input.
util::Bytes Mutate(const util::Bytes& input, util::Rng& rng) {
  util::Bytes out = input;
  const int edits = 1 + static_cast<int>(rng.Below(8));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const std::size_t pos = rng.Below(out.size());
    switch (rng.Below(3)) {
      case 0: out[pos] ^= static_cast<std::uint8_t>(1 + rng.Below(255)); break;
      case 1:
        out.insert(out.begin() + pos,
                   static_cast<std::uint8_t>(rng.Below(256)));
        break;
      default: out.erase(out.begin() + pos);
    }
  }
  return out;
}

TEST(Fuzz, MessageDecoderNeverCrashes) {
  util::Rng rng(101);
  // Pure random buffers.
  for (int i = 0; i < 2000; ++i) {
    const auto junk = RandomBytes(rng, 300);
    auto result = dns::DecodeMessage(junk);
    if (result.ok()) {
      // If it decoded, re-encoding must not crash either.
      (void)dns::EncodeMessage(*result);
    }
  }
  // Mutations of a real message (much more likely to reach deep paths).
  dns::Message m = dns::MakeQuery(1, *dns::Name::Parse("www.example.com."),
                                  dns::RRType::kA);
  m.header.qr = true;
  m.answers.push_back({*dns::Name::Parse("www.example.com."), dns::RRType::kA,
                       dns::RRClass::kIN, 300,
                       dns::AData{*dns::Ipv4::Parse("192.0.2.1")}});
  const auto valid = dns::EncodeMessage(m);
  for (int i = 0; i < 3000; ++i) {
    const auto mutated = Mutate(valid, rng);
    auto result = dns::DecodeMessage(mutated);
    if (result.ok()) (void)dns::EncodeMessage(*result);
  }
}

TEST(Fuzz, MasterFileParserNeverCrashes) {
  util::Rng rng(103);
  const std::string valid =
      "$TTL 3600\ncom. 172800 IN NS a.gtld-servers.net.\n"
      "a.gtld-servers.net. IN A 192.5.6.30\n";
  for (int i = 0; i < 2000; ++i) {
    std::string text = valid;
    const int edits = 1 + static_cast<int>(rng.Below(6));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos = rng.Below(text.size());
      switch (rng.Below(3)) {
        case 0: text[pos] = static_cast<char>(rng.Below(256)); break;
        case 1: text.insert(text.begin() + pos,
                            static_cast<char>(rng.Below(128))); break;
        default: text.erase(text.begin() + pos);
      }
    }
    (void)zone::ParseMasterFile(text);
  }
  // Random garbage text too.
  for (int i = 0; i < 500; ++i) {
    const auto junk = RandomBytes(rng, 200);
    (void)zone::ParseMasterFile(
        std::string_view(reinterpret_cast<const char*>(junk.data()),
                         junk.size()));
  }
}

TEST(Fuzz, SnapshotAndDiffDecodersNeverCrash) {
  util::Rng rng(107);
  zone::EvolutionConfig config;
  config.legacy_tld_count = 20;
  config.peak_tld_count = 25;
  const zone::RootZoneModel model(config);
  const auto snapshot = zone::SerializeZone(model.Snapshot({2019, 4, 1}));
  const auto diff = zone::SerializeDiff(
      DiffZones(model.Snapshot({2019, 4, 1}), model.Snapshot({2019, 4, 5})));
  for (int i = 0; i < 1500; ++i) {
    (void)zone::DeserializeZone(Mutate(snapshot, rng));
    (void)zone::DeserializeDiff(Mutate(diff, rng));
    (void)zone::DeserializeZone(RandomBytes(rng, 100));
    (void)zone::DeserializeDiff(RandomBytes(rng, 100));
  }
}

TEST(Fuzz, RzcDecompressorNeverCrashes) {
  util::Rng rng(109);
  const auto valid = zone::RzcCompressText(
      "a perfectly ordinary zone file body that compresses somewhat, "
      "a perfectly ordinary zone file body that compresses somewhat");
  for (int i = 0; i < 3000; ++i) {
    (void)zone::RzcDecompress(Mutate(valid, rng));
    (void)zone::RzcDecompress(RandomBytes(rng, 120));
  }
}

TEST(Fuzz, RsyncDeltaDecoderNeverCrashes) {
  util::Rng rng(113);
  util::Bytes base(5000);
  for (auto& b : base) b = static_cast<std::uint8_t>(rng.Below(256));
  util::Bytes target = base;
  target[100] ^= 1;
  const auto sig = distrib::ComputeSignature(base, 512);
  const auto delta = distrib::SerializeDelta(distrib::ComputeDelta(sig, target));
  for (int i = 0; i < 2000; ++i) {
    auto decoded = distrib::DeserializeDelta(Mutate(delta, rng));
    if (decoded.ok()) {
      // Applying a structurally valid but semantically wrong delta must
      // fail gracefully or produce some bytes — never crash.
      (void)distrib::ApplyDelta(base, *decoded);
    }
  }
}

TEST(Fuzz, DiffChannelApplyNeverCrashes) {
  util::Rng rng(127);
  zone::EvolutionConfig config;
  config.legacy_tld_count = 15;
  config.peak_tld_count = 20;
  const zone::RootZoneModel model(config);
  distrib::DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  publisher.Publish(model.Snapshot({2019, 4, 2}));
  auto update = publisher.UpdatesSince(
      zone::RootZoneModel::SerialFor({2019, 4, 1}));
  for (int i = 0; i < 1000; ++i) {
    auto mutated = update;
    mutated.payload = Mutate(update.payload, rng);
    distrib::DiffSubscriber subscriber(model.Snapshot({2019, 4, 1}));
    (void)subscriber.Apply(mutated);
  }
}

TEST(Fuzz, MessageDecodeErrorsAreCoded) {
  // Every decode failure must carry a structured code: kTruncated when the
  // wire ran out mid-structure, kCorrupted when bytes were present but
  // unparseable — wire front-ends branch on this to answer FORMERR.
  dns::Message m = dns::MakeQuery(9, *dns::Name::Parse("www.example.com."),
                                  dns::RRType::kA);
  m.answers.push_back({*dns::Name::Parse("www.example.com."), dns::RRType::kA,
                       dns::RRClass::kIN, 300,
                       dns::AData{*dns::Ipv4::Parse("192.0.2.1")}});
  const auto valid = dns::EncodeMessage(m);
  // Every strict prefix is a truncation.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    auto result = dns::DecodeMessage({valid.data(), len});
    ASSERT_FALSE(result.ok()) << len;
    EXPECT_EQ(result.error().code(), ErrorCode::kTruncated) << len;
  }
  // Trailing garbage is corruption, not truncation.
  auto padded = valid;
  padded.push_back(0xAB);
  auto trailing = dns::DecodeMessage(padded);
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.error().code(), ErrorCode::kCorrupted);
  // A forward compression pointer is corruption.
  auto forward = valid;
  forward[12] = 0xC0;  // qname becomes a pointer...
  forward[13] = 0xFF;  // ...aimed past the current offset
  auto fwd = dns::DecodeMessage(forward);
  ASSERT_FALSE(fwd.ok());
  EXPECT_EQ(fwd.error().code(), ErrorCode::kCorrupted);
  // And whatever a mutation produces, the code is always one of the two.
  util::Rng rng(137);
  for (int i = 0; i < 3000; ++i) {
    auto result = dns::DecodeMessage(Mutate(valid, rng));
    if (result.ok()) continue;
    const auto code = result.error().code();
    EXPECT_TRUE(code == ErrorCode::kTruncated ||
                code == ErrorCode::kCorrupted)
        << ErrorCodeName(code);
  }
}

TEST(Fuzz, AuthServerSurvivesHostileDatagrams) {
  // The full wire path: arbitrary bytes through HandleDatagram with the
  // front-end configuration (FORMERR for garbage). Every response must
  // decode, have qr set, and echo the id of its query; sub-header garbage
  // must draw no response at all.
  sim::Simulator sim;
  sim::Network net(sim, 5);
  auto zone = std::make_shared<zone::Zone>();
  dns::SoaData soa;
  soa.mname = *dns::Name::Parse("a.root-servers.net.");
  soa.serial = 1;
  ASSERT_TRUE(zone->AddRecord({dns::Name(), dns::RRType::kSOA,
                               dns::RRClass::kIN, 86400, soa})
                  .ok());
  rootsrv::AuthServer::Options options;
  options.respond_formerr_to_garbage = true;
  rootsrv::AuthServer server(&net, zone::ZoneSnapshot::Build(*zone), options);

  std::size_t responses = 0;
  const sim::NodeId client = net.AddNode([&](const sim::Datagram& d) {
    auto decoded = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded->header.qr);
    ++responses;
  });

  util::Rng rng(139);
  const auto valid = dns::EncodeMessage(
      dns::MakeQuery(7, *dns::Name::Parse("anything.example."),
                     dns::RRType::kA));
  std::size_t sub_header = 0;
  for (int i = 0; i < 2000; ++i) {
    auto payload = i % 2 == 0 ? RandomBytes(rng, 80) : Mutate(valid, rng);
    if (payload.size() < 12 || (payload.size() > 2 && (payload[2] & 0x80))) {
      ++sub_header;  // headerless or response-flagged: must stay silent
    }
    net.Send(client, server.node(), std::move(payload));
  }
  sim.Run();
  EXPECT_EQ(server.stats().queries, 2000u);
  // Everything with a readable non-response header was answered (FORMERR or
  // a real answer), everything else dropped.
  EXPECT_EQ(responses, 2000u - sub_header);
}

TEST(Fuzz, NameDecoderHandlesAdversarialPointers) {
  util::Rng rng(131);
  for (int i = 0; i < 5000; ++i) {
    // Buffers dense with pointer-looking bytes (0xC0 prefixes).
    util::Bytes data(2 + rng.Below(60));
    for (auto& b : data) {
      b = rng.Chance(0.4) ? 0xC0 : static_cast<std::uint8_t>(rng.Below(256));
    }
    util::ByteReader reader(data);
    (void)dns::Name::DecodeWire(reader);
  }
}

}  // namespace
}  // namespace rootless
