// Tests for the immutable arena-backed zone snapshot layer: lookup parity
// with zone::Zone, structural sharing under Apply, serialization parity,
// DiffSnapshots equivalence, and the zero-copy MessageView wire path.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "crypto/dnssec.h"
#include "dns/message.h"
#include "zone/evolution.h"
#include "zone/sign.h"
#include "zone/snapshot.h"
#include "zone/zone_diff.h"
#include "zone/zone_snapshot.h"

namespace rootless::zone {
namespace {

using dns::Name;
using dns::RRset;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// Materializes both sides of a lookup and compares section by section.
void ExpectLookupParity(const Zone& zone, const ZoneSnapshot& snapshot,
                        const Name& qname, RRType qtype,
                        bool include_dnssec = false) {
  const LookupResult want = zone.Lookup(qname, qtype, include_dnssec);
  const LookupResult got =
      snapshot.Lookup(qname, qtype, include_dnssec).Materialize();
  SCOPED_TRACE(qname.ToString());
  EXPECT_EQ(got.disposition, want.disposition);
  EXPECT_EQ(got.answers, want.answers);
  EXPECT_EQ(got.authority, want.authority);
  EXPECT_EQ(got.additional, want.additional);
}

TEST(ZoneSnapshot, BuildPreservesContent) {
  const RootZoneModel model;
  const Zone master = model.Snapshot({2019, 6, 7});
  const SnapshotPtr snapshot = ZoneSnapshot::Build(master);

  EXPECT_EQ(snapshot->apex(), master.apex());
  EXPECT_EQ(snapshot->Serial(), master.Serial());
  EXPECT_EQ(snapshot->rrset_count(), master.rrset_count());
  EXPECT_EQ(snapshot->record_count(), master.record_count());
  EXPECT_EQ(snapshot->page_count(), 1u);
  EXPECT_TRUE(snapshot->SameContent(*snapshot));

  // Round-trip through the mutable form is lossless.
  const Zone back = snapshot->ToZone();
  EXPECT_EQ(SerializeZone(back), SerializeZone(master));

  // Canonical iteration matches AllRRsets.
  std::vector<RRset> visited;
  snapshot->ForEachRRset(
      [&](const dns::RRsetView& v) { visited.push_back(v.Materialize()); });
  EXPECT_EQ(visited, snapshot->AllRRsets());
}

TEST(ZoneSnapshot, LookupParityPlain) {
  const RootZoneModel model;
  const Zone master = model.Snapshot({2019, 6, 7});
  const SnapshotPtr snapshot = ZoneSnapshot::Build(master);

  // Apex answers, referrals (with glue), NODATA, NXDOMAIN, out-of-zone.
  ExpectLookupParity(master, *snapshot, N("."), RRType::kSOA);
  ExpectLookupParity(master, *snapshot, N("."), RRType::kNS);
  ExpectLookupParity(master, *snapshot, N("."), RRType::kTXT);
  ExpectLookupParity(master, *snapshot, N("com."), RRType::kNS);
  ExpectLookupParity(master, *snapshot, N("com."), RRType::kDS);
  ExpectLookupParity(master, *snapshot, N("com."), RRType::kA);
  ExpectLookupParity(master, *snapshot, N("www.example.com."), RRType::kA);
  ExpectLookupParity(master, *snapshot, N("no-such-tld-xyzzy."), RRType::kA);
  ExpectLookupParity(master, *snapshot, N("a.b.no-such-tld-xyzzy."),
                     RRType::kAAAA);

  // Every delegated child, both NS (referral/answer path) and A.
  for (const Name& child : master.DelegatedChildren()) {
    ExpectLookupParity(master, *snapshot, child, RRType::kNS);
    ExpectLookupParity(master, *snapshot, child, RRType::kA);
  }
  EXPECT_EQ(snapshot->DelegatedChildren(), master.DelegatedChildren());
}

TEST(ZoneSnapshot, LookupParitySigned) {
  const RootZoneModel model;
  util::Rng rng(7);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  const Zone signed_zone =
      SignZone(model.Snapshot({2019, 6, 7}), zsk, {0, 2'000'000'000});
  const SnapshotPtr snapshot = ZoneSnapshot::Build(signed_zone);

  for (const bool dnssec : {false, true}) {
    SCOPED_TRACE(dnssec ? "dnssec" : "plain");
    ExpectLookupParity(signed_zone, *snapshot, N("."), RRType::kSOA, dnssec);
    ExpectLookupParity(signed_zone, *snapshot, N("."), RRType::kDNSKEY,
                       dnssec);
    ExpectLookupParity(signed_zone, *snapshot, N("com."), RRType::kNS,
                       dnssec);
    ExpectLookupParity(signed_zone, *snapshot, N("com."), RRType::kDS,
                       dnssec);
    // NXDOMAIN must carry the covering NSEC (+RRSIG) when dnssec is on.
    ExpectLookupParity(signed_zone, *snapshot, N("no-such-tld-xyzzy."),
                       RRType::kA, dnssec);
    ExpectLookupParity(signed_zone, *snapshot, N("zzz-not-there."),
                       RRType::kNS, dnssec);
  }
}

TEST(ZoneSnapshot, ApplyMatchesApplyDiffAndSharesPages) {
  const RootZoneModel model;
  const Zone today = model.Snapshot({2018, 4, 11});
  const Zone tomorrow = model.Snapshot({2018, 4, 12});
  const ZoneDiff diff = DiffZones(today, tomorrow);
  ASSERT_FALSE(diff.empty());

  const SnapshotPtr base = ZoneSnapshot::Build(today);
  auto applied = ZoneSnapshot::Apply(base, diff);
  ASSERT_TRUE(applied.ok());

  // Content identical to rebuilding from the new day's zone.
  const SnapshotPtr rebuilt = ZoneSnapshot::Build(tomorrow);
  EXPECT_TRUE((*applied)->SameContent(*rebuilt));
  EXPECT_EQ((*applied)->Serial(), tomorrow.Serial());

  // Structural sharing: one new delta page, every base page shared, and the
  // delta page holds exactly the added+changed RRsets.
  EXPECT_EQ((*applied)->page_count(), base->page_count() + 1);
  EXPECT_EQ((*applied)->SharedPageCount(*base), base->page_count());
  EXPECT_EQ((*applied)->newest_page_rrset_count(),
            diff.added.size() + diff.changed.size());

  // Chained Apply keeps sharing the original page.
  const Zone day3 = model.Snapshot({2018, 4, 13});
  auto applied2 = ZoneSnapshot::Apply(*applied, DiffZones(tomorrow, day3));
  ASSERT_TRUE(applied2.ok());
  EXPECT_TRUE((*applied2)->SameContent(*ZoneSnapshot::Build(day3)));
  EXPECT_EQ((*applied2)->SharedPageCount(*base), base->page_count());
}

TEST(ZoneSnapshot, ApplyLeavesUnchangedViewsAliasingBaseArena) {
  const RootZoneModel model;
  const Zone today = model.Snapshot({2018, 4, 11});
  const Zone tomorrow = model.Snapshot({2018, 4, 12});
  const ZoneDiff diff = DiffZones(today, tomorrow);

  // Pick an RRset untouched by the diff.
  std::set<std::string> touched;
  for (const auto& s : diff.added) touched.insert(s.name.ToString());
  for (const auto& k : diff.removed) touched.insert(k.name.ToString());
  for (const auto& s : diff.changed) touched.insert(s.name.ToString());
  Name untouched = N(".");
  bool found = false;
  for (const Name& child : today.DelegatedChildren()) {
    if (!touched.count(child.ToString())) {
      untouched = child;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  const SnapshotPtr base = ZoneSnapshot::Build(today);
  auto applied = ZoneSnapshot::Apply(base, diff);
  ASSERT_TRUE(applied.ok());

  const auto before = base->Find(untouched, RRType::kNS);
  const auto after = (*applied)->Find(untouched, RRType::kNS);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  // Zero-copy: the derived snapshot serves the very same arena memory.
  EXPECT_EQ(after->rdatas.data(), before->rdatas.data());
  EXPECT_EQ(after->name, before->name);
}

TEST(ZoneSnapshot, ApplyRejectsBadDiffLikeApplyDiff) {
  const RootZoneModel model;
  const SnapshotPtr base = ZoneSnapshot::Build(model.Snapshot({2019, 6, 7}));

  ZoneDiff bad;
  bad.removed.push_back(
      {N("definitely-not-present."), RRType::kNS, dns::RRClass::kIN});
  EXPECT_FALSE(ZoneSnapshot::Apply(base, bad).ok());

  ZoneDiff bad_change;
  RRset ghost;
  ghost.name = N("definitely-not-present.");
  ghost.type = RRType::kNS;
  ghost.rdatas.push_back(dns::NsData{N("ns.example.")});
  bad_change.changed.push_back(ghost);
  EXPECT_FALSE(ZoneSnapshot::Apply(base, bad_change).ok());
}

TEST(ZoneSnapshot, SerializationParityWithZone) {
  const RootZoneModel model;
  const Zone master = model.Snapshot({2019, 6, 7});
  const SnapshotPtr snapshot = ZoneSnapshot::Build(master);

  const util::Bytes from_zone = SerializeZone(master);
  const util::Bytes from_snapshot = SerializeSnapshot(*snapshot);
  EXPECT_EQ(from_snapshot, from_zone);

  auto restored = DeserializeSnapshot(from_snapshot);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE((*restored)->SameContent(*snapshot));
}

TEST(ZoneSnapshot, DiffSnapshotsMatchesDiffZones) {
  const RootZoneModel model;
  const Zone today = model.Snapshot({2018, 4, 11});
  const Zone tomorrow = model.Snapshot({2018, 4, 12});

  const ZoneDiff want = DiffZones(today, tomorrow);
  const ZoneDiff got = DiffSnapshots(*ZoneSnapshot::Build(today),
                                     *ZoneSnapshot::Build(tomorrow));
  EXPECT_EQ(got.added, want.added);
  EXPECT_EQ(got.removed, want.removed);
  EXPECT_EQ(got.changed, want.changed);
  EXPECT_EQ(SerializeDiff(got), SerializeDiff(want));

  // And across an Apply chain (page structure differs, content does not).
  auto applied =
      ZoneSnapshot::Apply(ZoneSnapshot::Build(today), want);
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(
      DiffSnapshots(*ZoneSnapshot::Build(tomorrow), **applied).empty());
}

TEST(ZoneSnapshot, MessageViewEncodesByteIdenticalToMessage) {
  const RootZoneModel model;
  const Zone master = model.Snapshot({2019, 6, 7});
  const SnapshotPtr snapshot = ZoneSnapshot::Build(master);

  const Name qname = N("www.example.com.");
  LookupView view = snapshot->Lookup(qname, RRType::kA);
  ASSERT_EQ(view.disposition, LookupDisposition::kReferral);

  dns::MessageView borrowed;
  borrowed.header.id = 0x1234;
  borrowed.header.qr = true;
  borrowed.questions.push_back({qname, RRType::kA, dns::RRClass::kIN});
  borrowed.answers = view.answers;
  borrowed.authority = view.authority;
  borrowed.additional = view.additional;

  dns::Message owned;
  owned.header = borrowed.header;
  owned.questions = borrowed.questions;
  const LookupResult materialized = view.Materialize();
  for (const auto& s : materialized.answers)
    for (auto& rr : s.ToRecords()) owned.answers.push_back(rr);
  for (const auto& s : materialized.authority)
    for (auto& rr : s.ToRecords()) owned.authority.push_back(rr);
  for (const auto& s : materialized.additional)
    for (auto& rr : s.ToRecords()) owned.additional.push_back(rr);

  // Unlimited and truncating encodes are both byte-identical.
  EXPECT_EQ(dns::EncodeMessage(borrowed), dns::EncodeMessage(owned));
  for (const std::size_t max : {512u, 256u, 64u}) {
    EXPECT_EQ(dns::EncodeMessage(borrowed, max),
              dns::EncodeMessage(owned, max))
        << "max_size=" << max;
  }
}

}  // namespace
}  // namespace rootless::zone
