// Tests for the authoritative server, root fleet, and TLD farm.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "rootsrv/auth_server.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "topo/deployment.h"
#include "topo/topology.h"
#include "zone/evolution.h"

namespace rootless::rootsrv {
namespace {

using dns::Name;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

struct Fixture {
  sim::Simulator sim;
  sim::Network net{sim, 11};
  topo::Topology registry;
  std::shared_ptr<zone::Zone> root_zone = std::make_shared<zone::Zone>();

  Fixture() {
    net.set_latency_fn(registry.LatencyFn());
    dns::SoaData soa;
    soa.mname = N("a.root-servers.net.");
    soa.serial = 2018041100;
    EXPECT_TRUE(root_zone
                    ->AddRecord({Name(), RRType::kSOA, dns::RRClass::kIN,
                                 86400, soa})
                    .ok());
    EXPECT_TRUE(root_zone
                    ->AddRecord({N("com."), RRType::kNS, dns::RRClass::kIN,
                                 172800, dns::NsData{N("ns.nic.com.")}})
                    .ok());
    EXPECT_TRUE(root_zone
                    ->AddRecord({N("ns.nic.com."), RRType::kA,
                                 dns::RRClass::kIN, 172800,
                                 dns::AData{*dns::Ipv4::Parse("192.0.2.1")}})
                    .ok());
  }
};

TEST(AuthServer, AnswersReferral) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto query = dns::MakeQuery(7, N("www.example.com."), RRType::kA);
  const auto response = server.Answer(query);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNoError);
  EXPECT_FALSE(response.header.aa);
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, RRType::kNS);
  ASSERT_FALSE(response.additional.empty());  // glue
  EXPECT_EQ(server.stats().referrals, 1u);
}

TEST(AuthServer, AnswersNxdomainForBogusTld) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto response =
      server.Answer(dns::MakeQuery(8, N("foo.bogus-junk."), RRType::kA));
  EXPECT_EQ(response.header.rcode, dns::RCode::kNXDomain);
  EXPECT_TRUE(response.header.aa);
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, RRType::kSOA);
  EXPECT_EQ(server.stats().nxdomain, 1u);
}

TEST(AuthServer, RespondsOverNetwork) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  dns::Message got;
  const sim::NodeId client = f.net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  f.registry.PlaceNode(client, {40, -74});
  f.registry.PlaceNode(server.node(), {51, 0});
  f.net.Send(client, server.node(),
             dns::EncodeMessage(dns::MakeQuery(9, N("x.com."), RRType::kA)));
  f.sim.Run();
  EXPECT_TRUE(got.header.qr);
  EXPECT_EQ(got.header.id, 9);
  EXPECT_GT(f.sim.now(), 2 * 20 * sim::kMillisecond);  // a real RTT elapsed
  EXPECT_EQ(server.stats().bytes_out, f.net.bytes_sent() -
                                          /* query bytes */ server.stats().bytes_in);
}

TEST(AuthServer, DropsMalformedQueries) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const sim::NodeId client = f.net.AddNode(nullptr);
  f.net.Send(client, server.node(), util::Bytes{1, 2, 3});
  f.sim.Run();
  EXPECT_EQ(server.stats().malformed, 1u);
}

TEST(AuthServer, ZoneSwapTakesEffect) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  auto new_zone = std::make_shared<zone::Zone>(*f.root_zone);
  ASSERT_TRUE(new_zone
                  ->AddRecord({N("dev."), RRType::kNS, dns::RRClass::kIN,
                               172800, dns::NsData{N("ns.nic.dev.")}})
                  .ok());
  EXPECT_EQ(server.Answer(dns::MakeQuery(1, N("a.dev."), RRType::kA))
                .header.rcode,
            dns::RCode::kNXDomain);
  server.SetZone(new_zone);
  EXPECT_EQ(server.Answer(dns::MakeQuery(2, N("a.dev."), RRType::kA))
                .header.rcode,
            dns::RCode::kNoError);
}

// ---- EDNS0 / truncation / preflight / answer cache --------------------

// A query carrying an OPT pseudo-record advertising `payload` bytes.
dns::Message WithOpt(dns::Message query, std::uint16_t payload) {
  query.additional.push_back({Name(), RRType::kOPT,
                              static_cast<dns::RRClass>(payload), 0,
                              dns::RawData{}});
  return query;
}

// A zone whose referral for *.big. encodes to more than 4096 bytes (100 NS
// records plus glue), so every UDP payload tier truncates.
zone::SnapshotPtr BigReferralSnapshot() {
  zone::Zone zone;
  dns::SoaData soa;
  soa.mname = N("a.root-servers.net.");
  soa.serial = 1;
  EXPECT_TRUE(
      zone.AddRecord({Name(), RRType::kSOA, dns::RRClass::kIN, 86400, soa})
          .ok());
  for (int i = 0; i < 100; ++i) {
    const Name ns = N("ns" + std::to_string(i) + ".big.");
    EXPECT_TRUE(zone.AddRecord({N("big."), RRType::kNS, dns::RRClass::kIN,
                                172800, dns::NsData{ns}})
                    .ok());
    EXPECT_TRUE(zone.AddRecord({ns, RRType::kA, dns::RRClass::kIN, 172800,
                                dns::AData{*dns::Ipv4::Parse("192.0.2.7")}})
                    .ok());
  }
  return zone::ZoneSnapshot::Build(zone);
}

bool TcBit(const util::Bytes& wire) {
  return wire.size() > 2 && (wire[2] & 0x02);
}

TEST(AuthServerEdns, TruncatesAt512WithoutOpt) {
  AuthServer::Options options;
  options.edns.default_udp_payload = 512;  // wire front-end configuration
  AuthServer server(nullptr, BigReferralSnapshot(), options);
  const auto wire =
      server.AnswerWire(dns::MakeQuery(1, N("www.big."), RRType::kA));
  EXPECT_LE(wire.size(), 512u);
  EXPECT_TRUE(TcBit(wire));
  EXPECT_EQ(server.stats().truncated, 1u);
  EXPECT_EQ(server.stats().edns_queries, 0u);
}

TEST(AuthServerEdns, HonorsRequestorPayloadTiers) {
  AuthServer::Options options;
  options.edns.default_udp_payload = 512;
  AuthServer server(nullptr, BigReferralSnapshot(), options);
  std::size_t previous = 0;
  for (const std::uint16_t payload : {std::uint16_t{512}, std::uint16_t{1232},
                                      std::uint16_t{4096}}) {
    const auto wire = server.AnswerWire(
        WithOpt(dns::MakeQuery(payload, N("www.big."), RRType::kA), payload));
    EXPECT_LE(wire.size(), payload) << payload;
    EXPECT_TRUE(TcBit(wire)) << payload;  // full referral is > 4096
    EXPECT_GT(wire.size(), previous) << payload;  // more room, more records
    previous = wire.size();
  }
  EXPECT_EQ(server.stats().edns_queries, 3u);
}

TEST(AuthServerEdns, EchoesOptWhenResponseFits) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto wire = server.AnswerWire(
      WithOpt(dns::MakeQuery(1, N("www.com."), RRType::kA), 1232));
  EXPECT_FALSE(TcBit(wire));
  auto decoded = dns::DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_FALSE(decoded->additional.empty());
  const auto& opt = decoded->additional.back();
  EXPECT_EQ(opt.type, RRType::kOPT);
  EXPECT_EQ(static_cast<std::size_t>(opt.rrclass),
            server.edns().advertise_udp_payload);
  // Under truncation the OPT rides last and is the first record dropped —
  // the truncated wire signals TC alone (the big-referral tests above).
}

TEST(AuthServerEdns, ClampsAdvertisedPayload) {
  AuthServer::Options options;
  options.edns.default_udp_payload = 512;
  AuthServer server(nullptr, BigReferralSnapshot(), options);
  // A tiny advertisement clamps up to the 512 floor...
  const auto small = server.AnswerWire(
      WithOpt(dns::MakeQuery(1, N("www.big."), RRType::kA), 100));
  EXPECT_LE(small.size(), 512u);
  // ...and a giant one clamps down to the 4096 ceiling.
  const auto large = server.AnswerWire(
      WithOpt(dns::MakeQuery(2, N("www.big."), RRType::kA), 65535));
  EXPECT_LE(large.size(), 4096u);
  EXPECT_GT(large.size(), 512u);
  EXPECT_TRUE(TcBit(large));
}

TEST(AuthServerEdns, TcpNeverTruncates) {
  AuthServer server(nullptr, BigReferralSnapshot(), {});
  const auto wire = server.AnswerWire(
      dns::MakeQuery(1, N("www.big."), RRType::kA), Channel::kTcp);
  EXPECT_GT(wire.size(), 4096u);
  EXPECT_FALSE(TcBit(wire));
  EXPECT_EQ(server.stats().truncated, 0u);
}

TEST(AuthServerPreflight, ScreensProtocolViolations) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);

  // Two questions: FORMERR.
  auto two_questions = dns::MakeQuery(1, N("a.com."), RRType::kA);
  two_questions.questions.push_back({N("b.com."), RRType::kA,
                                     dns::RRClass::kIN});
  EXPECT_EQ(server.Answer(two_questions).header.rcode, dns::RCode::kFormErr);

  // Two OPT records: FORMERR (RFC 6891 §6.1.1).
  const auto two_opts =
      WithOpt(WithOpt(dns::MakeQuery(2, N("a.com."), RRType::kA), 1232), 1232);
  EXPECT_EQ(server.Answer(two_opts).header.rcode, dns::RCode::kFormErr);

  // Non-query opcode: NOTIMP.
  auto notify = dns::MakeQuery(3, N("a.com."), RRType::kA);
  notify.header.opcode = dns::Opcode::kNotify;
  EXPECT_EQ(server.Answer(notify).header.rcode, dns::RCode::kNotImp);

  // Non-IN class: REFUSED.
  auto chaos = dns::MakeQuery(4, N("version.bind."), RRType::kTXT);
  chaos.questions.front().rrclass = dns::RRClass::kCH;
  EXPECT_EQ(server.Answer(chaos).header.rcode, dns::RCode::kRefused);

  // AXFR over UDP: REFUSED (TCP front-ends divert AXFR before the server).
  const auto axfr = dns::MakeQuery(5, Name(), RRType::kAXFR);
  const auto axfr_answer = server.Answer(axfr);
  EXPECT_EQ(axfr_answer.header.rcode, dns::RCode::kRefused);
  EXPECT_EQ(server.AnswerWire(axfr, Channel::kUdp),
            dns::EncodeMessage(axfr_answer));

  EXPECT_EQ(server.stats().malformed, 2u);
  EXPECT_EQ(server.stats().refused, 4u);  // notimp + chaos + 2x axfr
}

TEST(AuthServerCache, HitsAreByteIdenticalModuloId) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto first =
      server.AnswerWire(dns::MakeQuery(0x1111, N("www.x.com."), RRType::kA));
  const auto second =
      server.AnswerWire(dns::MakeQuery(0x2222, N("www.x.com."), RRType::kA));
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(second[0], 0x22);
  EXPECT_EQ(second[1], 0x22);
  EXPECT_TRUE(std::equal(first.begin() + 2, first.end(), second.begin() + 2));
  EXPECT_EQ(server.stats().cache_hits, 1u);
  EXPECT_EQ(server.stats().referrals, 2u);  // counters replay on hits
}

TEST(AuthServerCache, DistinguishesEveryKeyDimension) {
  AuthServer::Options options;
  options.edns.default_udp_payload = 512;
  AuthServer server(nullptr, BigReferralSnapshot(), options);
  const auto base = dns::MakeQuery(1, N("www.big."), RRType::kA);
  const auto plain = server.AnswerWire(base);
  // Different qtype, different payload limit, different channel, and an rd
  // flag flip must all miss the cache and produce different bytes.
  const auto aaaa =
      server.AnswerWire(dns::MakeQuery(1, N("www.big."), RRType::kAAAA));
  const auto edns = server.AnswerWire(WithOpt(base, 4096));
  const auto tcp = server.AnswerWire(base, Channel::kTcp);
  auto rd = base;
  rd.header.rd = true;
  const auto rd_wire = server.AnswerWire(rd);
  EXPECT_EQ(server.stats().cache_hits, 0u);
  EXPECT_NE(plain, edns);
  EXPECT_NE(plain, tcp);
  EXPECT_NE(plain, rd_wire);
  EXPECT_NE(plain, aaaa);
  // And the exact-case question echo is preserved per spelling.
  const auto upper =
      server.AnswerWire(dns::MakeQuery(1, N("WWW.BIG."), RRType::kA));
  EXPECT_EQ(server.stats().cache_hits, 0u);
  auto decoded = dns::DecodeMessage(upper);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->questions.front().name.ToString(), "WWW.BIG.");
}

TEST(AuthServerCache, SetZoneInvalidates) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  EXPECT_EQ(server.AnswerWire(dns::MakeQuery(1, N("a.dev."), RRType::kA))[3] &
                0x0F,
            static_cast<int>(dns::RCode::kNXDomain));
  auto new_zone = std::make_shared<zone::Zone>(*f.root_zone);
  ASSERT_TRUE(new_zone
                  ->AddRecord({N("dev."), RRType::kNS, dns::RRClass::kIN,
                               172800, dns::NsData{N("ns.nic.dev.")}})
                  .ok());
  server.SetZone(new_zone);
  EXPECT_EQ(server.AnswerWire(dns::MakeQuery(2, N("a.dev."), RRType::kA))[3] &
                0x0F,
            static_cast<int>(dns::RCode::kNoError));
  EXPECT_EQ(server.stats().cache_hits, 0u);
}

TEST(AuthServerCache, DisabledServerStillAnswersIdentically) {
  Fixture f;
  AuthServer::Options options;
  options.answer_cache_entries = 0;
  AuthServer cached(f.net, f.root_zone);
  AuthServer plain(nullptr, zone::ZoneSnapshot::Build(*f.root_zone), options);
  for (int i = 0; i < 3; ++i) {
    const auto query =
        dns::MakeQuery(static_cast<std::uint16_t>(i), N("go.com."), RRType::kA);
    EXPECT_EQ(cached.AnswerWire(query), plain.AnswerWire(query));
  }
  EXPECT_EQ(cached.stats().cache_hits, 2u);
  EXPECT_EQ(plain.stats().cache_hits, 0u);
}

TEST(Fleet, InstanceCountMatchesDeployment) {
  Fixture f;
  topo::DeploymentModel deployment;
  RootServerFleet fleet(f.net, f.registry, f.root_zone);
  EXPECT_EQ(fleet.instance_count(),
            static_cast<std::size_t>(
                deployment.TotalInstancesOn({2018, 4, 11})));
}

TEST(Fleet, AnycastPrefersNearbyInstance) {
  Fixture f;
  RootServerFleet fleet(f.net, f.registry, f.root_zone);
  // Large letters (many instances) should land closer than small ones on
  // average; at minimum the chosen instance must be the nearest of its
  // letter.
  const topo::GeoPoint client{48.85, 2.35};  // Paris
  const sim::NodeId node = fleet.InstanceFor('f', client);
  double chosen_km = -1;
  double best_km = 1e18;
  for (const auto& instance : fleet.instances()) {
    if (instance.letter != 'f') continue;
    const double km = topo::GreatCircleKm(instance.location, client);
    best_km = std::min(best_km, km);
    if (instance.server->node() == node) chosen_km = km;
  }
  EXPECT_NEAR(chosen_km, best_km, 1e-9);
}

TEST(Fleet, StatsAggregate) {
  Fixture f;
  RootServerFleet fleet(f.net, f.registry, f.root_zone);
  const sim::NodeId client = f.net.AddNode(nullptr);
  f.registry.PlaceNode(client, {40, -74});
  for (int i = 0; i < 5; ++i) {
    f.net.Send(client, fleet.InstanceFor('j', {40, -74}),
               dns::EncodeMessage(
                   dns::MakeQuery(static_cast<std::uint16_t>(i),
                                  N("foo.bogus."), RRType::kA)));
  }
  f.sim.Run();
  EXPECT_EQ(fleet.TotalStats().queries, 5u);
  EXPECT_EQ(fleet.LetterStats('j').queries, 5u);
  EXPECT_EQ(fleet.LetterStats('a').queries, 0u);
  EXPECT_EQ(fleet.TotalStats().nxdomain, 5u);
}

TEST(TldFarm, BuildsFromRootZoneAndAnswers) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::Topology registry;
  net.set_latency_fn(registry.LatencyFn());

  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);
  EXPECT_EQ(farm.tld_count(), root_zone.DelegatedChildren().size());

  sim::NodeId com_node = 0;
  ASSERT_TRUE(farm.FindTldNode("com", com_node));

  // Query the com server for an A record.
  dns::Message got;
  const sim::NodeId client = net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  net.Send(client, com_node,
           dns::EncodeMessage(
               dns::MakeQuery(5, N("www.example.com."), RRType::kA)));
  sim.Run();
  EXPECT_TRUE(got.header.aa);
  ASSERT_EQ(got.answers.size(), 1u);
  EXPECT_EQ(got.answers[0].type, RRType::kA);
  EXPECT_EQ(farm.queries_served(), 1u);

  // Determinism: the same name resolves to the same address.
  const auto a1 = std::get<dns::AData>(got.answers[0].rdata);
  net.Send(client, com_node,
           dns::EncodeMessage(
               dns::MakeQuery(6, N("www.example.com."), RRType::kA)));
  sim.Run();
  EXPECT_EQ(std::get<dns::AData>(got.answers[0].rdata), a1);
}

TEST(TldFarm, FindsNodeByGlueAddress) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::Topology registry;
  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);

  // Take com's first glue address from the zone and look it up.
  const auto* ns = root_zone.Find(N("com."), RRType::kNS);
  ASSERT_NE(ns, nullptr);
  bool found_any = false;
  for (const auto& rd : ns->rdatas) {
    const Name& host = std::get<dns::NsData>(rd).nameserver;
    if (const auto* a = root_zone.Find(host, RRType::kA)) {
      sim::NodeId via_addr = 0, via_tld = 0;
      ASSERT_TRUE(farm.FindByAddress(
          std::get<dns::AData>(a->rdatas.front()).address, via_addr));
      ASSERT_TRUE(farm.FindTldNode("com", via_tld));
      EXPECT_EQ(via_addr, via_tld);
      found_any = true;
    }
  }
  EXPECT_TRUE(found_any);
}

TEST(TldFarm, RefusesOutOfDomainQuery) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::Topology registry;
  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);

  sim::NodeId com_node = 0;
  ASSERT_TRUE(farm.FindTldNode("com", com_node));
  dns::Message got;
  const sim::NodeId client = net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  net.Send(client, com_node,
           dns::EncodeMessage(dns::MakeQuery(5, N("www.example.org."),
                                             RRType::kA)));
  sim.Run();
  EXPECT_EQ(got.header.rcode, dns::RCode::kRefused);
}

}  // namespace
}  // namespace rootless::rootsrv
