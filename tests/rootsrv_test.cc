// Tests for the authoritative server, root fleet, and TLD farm.
#include <gtest/gtest.h>

#include <memory>

#include "rootsrv/auth_server.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "topo/deployment.h"
#include "topo/geo_registry.h"
#include "zone/evolution.h"

namespace rootless::rootsrv {
namespace {

using dns::Name;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

struct Fixture {
  sim::Simulator sim;
  sim::Network net{sim, 11};
  topo::GeoRegistry registry;
  std::shared_ptr<zone::Zone> root_zone = std::make_shared<zone::Zone>();

  Fixture() {
    net.set_latency_fn(registry.LatencyFn());
    dns::SoaData soa;
    soa.mname = N("a.root-servers.net.");
    soa.serial = 2018041100;
    EXPECT_TRUE(root_zone
                    ->AddRecord({Name(), RRType::kSOA, dns::RRClass::kIN,
                                 86400, soa})
                    .ok());
    EXPECT_TRUE(root_zone
                    ->AddRecord({N("com."), RRType::kNS, dns::RRClass::kIN,
                                 172800, dns::NsData{N("ns.nic.com.")}})
                    .ok());
    EXPECT_TRUE(root_zone
                    ->AddRecord({N("ns.nic.com."), RRType::kA,
                                 dns::RRClass::kIN, 172800,
                                 dns::AData{*dns::Ipv4::Parse("192.0.2.1")}})
                    .ok());
  }
};

TEST(AuthServer, AnswersReferral) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto query = dns::MakeQuery(7, N("www.example.com."), RRType::kA);
  const auto response = server.Answer(query);
  EXPECT_EQ(response.header.rcode, dns::RCode::kNoError);
  EXPECT_FALSE(response.header.aa);
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, RRType::kNS);
  ASSERT_FALSE(response.additional.empty());  // glue
  EXPECT_EQ(server.stats().referrals, 1u);
}

TEST(AuthServer, AnswersNxdomainForBogusTld) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const auto response =
      server.Answer(dns::MakeQuery(8, N("foo.bogus-junk."), RRType::kA));
  EXPECT_EQ(response.header.rcode, dns::RCode::kNXDomain);
  EXPECT_TRUE(response.header.aa);
  ASSERT_FALSE(response.authority.empty());
  EXPECT_EQ(response.authority[0].type, RRType::kSOA);
  EXPECT_EQ(server.stats().nxdomain, 1u);
}

TEST(AuthServer, RespondsOverNetwork) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  dns::Message got;
  const sim::NodeId client = f.net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  f.registry.SetLocation(client, {40, -74});
  f.registry.SetLocation(server.node(), {51, 0});
  f.net.Send(client, server.node(),
             dns::EncodeMessage(dns::MakeQuery(9, N("x.com."), RRType::kA)));
  f.sim.Run();
  EXPECT_TRUE(got.header.qr);
  EXPECT_EQ(got.header.id, 9);
  EXPECT_GT(f.sim.now(), 2 * 20 * sim::kMillisecond);  // a real RTT elapsed
  EXPECT_EQ(server.stats().bytes_out, f.net.bytes_sent() -
                                          /* query bytes */ server.stats().bytes_in);
}

TEST(AuthServer, DropsMalformedQueries) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  const sim::NodeId client = f.net.AddNode(nullptr);
  f.net.Send(client, server.node(), util::Bytes{1, 2, 3});
  f.sim.Run();
  EXPECT_EQ(server.stats().malformed, 1u);
}

TEST(AuthServer, ZoneSwapTakesEffect) {
  Fixture f;
  AuthServer server(f.net, f.root_zone);
  auto new_zone = std::make_shared<zone::Zone>(*f.root_zone);
  ASSERT_TRUE(new_zone
                  ->AddRecord({N("dev."), RRType::kNS, dns::RRClass::kIN,
                               172800, dns::NsData{N("ns.nic.dev.")}})
                  .ok());
  EXPECT_EQ(server.Answer(dns::MakeQuery(1, N("a.dev."), RRType::kA))
                .header.rcode,
            dns::RCode::kNXDomain);
  server.SetZone(new_zone);
  EXPECT_EQ(server.Answer(dns::MakeQuery(2, N("a.dev."), RRType::kA))
                .header.rcode,
            dns::RCode::kNoError);
}

TEST(Fleet, InstanceCountMatchesDeployment) {
  Fixture f;
  topo::DeploymentModel deployment;
  RootServerFleet fleet(f.net, f.registry, deployment, {2018, 4, 11},
                        f.root_zone);
  EXPECT_EQ(fleet.instance_count(),
            static_cast<std::size_t>(
                deployment.TotalInstancesOn({2018, 4, 11})));
}

TEST(Fleet, AnycastPrefersNearbyInstance) {
  Fixture f;
  topo::DeploymentModel deployment;
  RootServerFleet fleet(f.net, f.registry, deployment, {2018, 4, 11},
                        f.root_zone);
  // Large letters (many instances) should land closer than small ones on
  // average; at minimum the chosen instance must be the nearest of its
  // letter.
  const topo::GeoPoint client{48.85, 2.35};  // Paris
  const sim::NodeId node = fleet.InstanceFor('f', client);
  double chosen_km = -1;
  double best_km = 1e18;
  for (const auto& instance : fleet.instances()) {
    if (instance.letter != 'f') continue;
    const double km = topo::GreatCircleKm(instance.location, client);
    best_km = std::min(best_km, km);
    if (instance.server->node() == node) chosen_km = km;
  }
  EXPECT_NEAR(chosen_km, best_km, 1e-9);
}

TEST(Fleet, StatsAggregate) {
  Fixture f;
  topo::DeploymentModel deployment;
  RootServerFleet fleet(f.net, f.registry, deployment, {2018, 4, 11},
                        f.root_zone);
  const sim::NodeId client = f.net.AddNode(nullptr);
  f.registry.SetLocation(client, {40, -74});
  for (int i = 0; i < 5; ++i) {
    f.net.Send(client, fleet.InstanceFor('j', {40, -74}),
               dns::EncodeMessage(
                   dns::MakeQuery(static_cast<std::uint16_t>(i),
                                  N("foo.bogus."), RRType::kA)));
  }
  f.sim.Run();
  EXPECT_EQ(fleet.TotalStats().queries, 5u);
  EXPECT_EQ(fleet.LetterStats('j').queries, 5u);
  EXPECT_EQ(fleet.LetterStats('a').queries, 0u);
  EXPECT_EQ(fleet.TotalStats().nxdomain, 5u);
}

TEST(TldFarm, BuildsFromRootZoneAndAnswers) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::GeoRegistry registry;
  net.set_latency_fn(registry.LatencyFn());

  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);
  EXPECT_EQ(farm.tld_count(), root_zone.DelegatedChildren().size());

  sim::NodeId com_node = 0;
  ASSERT_TRUE(farm.FindTldNode("com", com_node));

  // Query the com server for an A record.
  dns::Message got;
  const sim::NodeId client = net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  net.Send(client, com_node,
           dns::EncodeMessage(
               dns::MakeQuery(5, N("www.example.com."), RRType::kA)));
  sim.Run();
  EXPECT_TRUE(got.header.aa);
  ASSERT_EQ(got.answers.size(), 1u);
  EXPECT_EQ(got.answers[0].type, RRType::kA);
  EXPECT_EQ(farm.queries_served(), 1u);

  // Determinism: the same name resolves to the same address.
  const auto a1 = std::get<dns::AData>(got.answers[0].rdata);
  net.Send(client, com_node,
           dns::EncodeMessage(
               dns::MakeQuery(6, N("www.example.com."), RRType::kA)));
  sim.Run();
  EXPECT_EQ(std::get<dns::AData>(got.answers[0].rdata), a1);
}

TEST(TldFarm, FindsNodeByGlueAddress) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::GeoRegistry registry;
  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);

  // Take com's first glue address from the zone and look it up.
  const auto* ns = root_zone.Find(N("com."), RRType::kNS);
  ASSERT_NE(ns, nullptr);
  bool found_any = false;
  for (const auto& rd : ns->rdatas) {
    const Name& host = std::get<dns::NsData>(rd).nameserver;
    if (const auto* a = root_zone.Find(host, RRType::kA)) {
      sim::NodeId via_addr = 0, via_tld = 0;
      ASSERT_TRUE(farm.FindByAddress(
          std::get<dns::AData>(a->rdatas.front()).address, via_addr));
      ASSERT_TRUE(farm.FindTldNode("com", via_tld));
      EXPECT_EQ(via_addr, via_tld);
      found_any = true;
    }
  }
  EXPECT_TRUE(found_any);
}

TEST(TldFarm, RefusesOutOfDomainQuery) {
  sim::Simulator sim;
  sim::Network net(sim, 3);
  topo::GeoRegistry registry;
  const zone::RootZoneModel model;
  const zone::Zone root_zone = model.Snapshot({2018, 4, 11});
  TldFarm farm(net, registry, root_zone, 99);

  sim::NodeId com_node = 0;
  ASSERT_TRUE(farm.FindTldNode("com", com_node));
  dns::Message got;
  const sim::NodeId client = net.AddNode([&](const sim::Datagram& d) {
    auto m = dns::DecodeMessage(d.payload);
    ASSERT_TRUE(m.ok());
    got = *m;
  });
  net.Send(client, com_node,
           dns::EncodeMessage(dns::MakeQuery(5, N("www.example.org."),
                                             RRType::kA)));
  sim.Run();
  EXPECT_EQ(got.header.rcode, dns::RCode::kRefused);
}

}  // namespace
}  // namespace rootless::rootsrv
