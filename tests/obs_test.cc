// Observability layer: metrics registry, histograms, sim-time trace spans,
// and the shared bench exporter — plus the stats transitions of the two
// distribution-side consumers (RefreshDaemon, ZoneFetchService) that ride on
// registry handles.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "distrib/fetch_service.h"
#include "resolver/cache.h"
#include "resolver/recursive.h"
#include "resolver/refresh_daemon.h"
#include "rootsrv/tld_farm.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/result.h"
#include "zone/evolution.h"
#include "zone/zone_snapshot.h"

namespace rootless {
namespace {

// ------------------------------------------------------------- registry

TEST(ObsRegistry, CounterHandleIsPreResolved) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.counter");
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-registering the same (name, labels) yields the same slot.
  obs::Counter again = reg.counter("test.counter");
  again.Inc(8);
  EXPECT_EQ(c.value(), 50u);
}

TEST(ObsRegistry, LabelsDistinguishSlots) {
  obs::Registry reg;
  obs::Counter a = reg.counter("test.c", obs::Labels{"0", "", ""});
  obs::Counter b = reg.counter("test.c", obs::Labels{"1", "", ""});
  a.Inc();
  EXPECT_EQ(a.value(), 1u);
  EXPECT_EQ(b.value(), 0u);
  EXPECT_EQ(reg.metric_count(), 2u);
}

TEST(ObsRegistry, DefaultHandlesAreSafeSinks) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  c.Inc();
  g.Set(7);
  h.Record(3);  // must not crash; writes go to the sink
  SUCCEED();
}

TEST(ObsRegistry, KindMismatchReturnsSink) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.metric");
  c.Inc();
  // Asking for the same name as a gauge must not alias the counter slot.
  obs::Gauge g = reg.gauge("test.metric");
  g.Set(99);
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, NextInstanceIsSequentialPerModule) {
  obs::Registry reg;
  EXPECT_EQ(reg.NextInstance("resolver"), "0");
  EXPECT_EQ(reg.NextInstance("resolver"), "1");
  EXPECT_EQ(reg.NextInstance("cache"), "0");
  EXPECT_EQ(reg.NextInstance("resolver"), "2");
}

TEST(ObsRegistry, ResetAllZeroesButKeepsHandles) {
  obs::Registry reg;
  obs::Counter c = reg.counter("test.c");
  obs::Gauge g = reg.gauge("test.g");
  obs::Histogram h = reg.histogram("test.h");
  c.Inc(5);
  g.Set(-3);
  h.Record(100);
  reg.ResetAll();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.data().count, 0u);
  c.Inc();  // handle still live
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
  obs::Registry reg;
  reg.counter("z.last").Inc(1);
  reg.counter("a.first", obs::Labels{"1", "", ""}).Inc(2);
  reg.counter("a.first", obs::Labels{"0", "", ""}).Inc(3);
  reg.gauge("m.middle").Set(4);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[0].labels.instance, "0");
  EXPECT_EQ(snap[0].counter, 3u);
  EXPECT_EQ(snap[1].labels.instance, "1");
  EXPECT_EQ(snap[2].name, "m.middle");
  EXPECT_EQ(snap[3].name, "z.last");
}

// ------------------------------------------------------------ histogram

TEST(ObsHistogram, IdentityBucketsBelowCutoff) {
  obs::HistogramData h;
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(obs::HistogramData::BucketFor(v), static_cast<int>(v));
  }
}

TEST(ObsHistogram, BucketsAreMonotone) {
  int prev = -1;
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                          65536ull, 1000000ull, (1ull << 40), ~0ull}) {
    const int b = obs::HistogramData::BucketFor(v);
    EXPECT_GE(b, prev) << "v=" << v;
    EXPECT_LT(b, obs::HistogramData::kBucketCount);
    EXPECT_GE(obs::HistogramData::BucketUpperBound(b), v) << "v=" << v;
    prev = b;
  }
}

TEST(ObsHistogram, RecordTracksMomentsAndPercentiles) {
  obs::HistogramData h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 5050u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Percentiles land on bucket upper bounds; geometric buckets above 16 have
  // ≤25% relative width, so p50 of 1..100 is within [50, 64].
  EXPECT_GE(h.Percentile(50), 50u);
  EXPECT_LE(h.Percentile(50), 64u);
  EXPECT_GE(h.Percentile(99), 99u);
  EXPECT_LE(h.Percentile(99), 127u);
}

// ---------------------------------------------------------------- tracer

TEST(ObsTracer, SpansUseSimClock) {
  obs::SimTime clock = 100;
  obs::Tracer tracer(&clock);
  tracer.set_enabled(true);
  const obs::SpanId a = tracer.Start("outer");
  clock = 250;
  const obs::SpanId b = tracer.Start("inner", a);
  clock = 300;
  tracer.End(b);
  tracer.End(a);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, std::string("outer"));
  EXPECT_EQ(tracer.spans()[0].start, 100);
  EXPECT_EQ(tracer.spans()[0].end, 300);
  EXPECT_EQ(tracer.spans()[1].parent, a);
  EXPECT_EQ(tracer.spans()[1].start, 250);
}

TEST(ObsTracer, DisabledTracerRecordsNothing) {
  obs::SimTime clock = 0;
  obs::Tracer tracer(&clock);
  EXPECT_EQ(tracer.Start("x"), obs::kNoSpan);
  tracer.End(obs::kNoSpan);  // ignored
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(ObsTracer, MacrosTolerateNullTracer) {
  obs::Tracer* none = nullptr;
  const obs::SpanId id = ROOTLESS_SPAN_START(none, "x", obs::kNoSpan);
  EXPECT_EQ(id, obs::kNoSpan);
  ROOTLESS_SPAN_END(none, id);
  ROOTLESS_SPAN_INSTANT(none, "x", obs::kNoSpan);
}

TEST(ObsTracer, NetworkFlightSpansCoverLatency) {
  sim::Simulator sim;
  obs::Registry reg;
  sim::Network net(sim, 1, &reg);
  obs::Tracer tracer = sim.MakeTracer();
  tracer.set_enabled(true);
  sim.SetTracer(&tracer);

  const sim::NodeId a = net.AddNode(nullptr);
  bool received = false;
  const sim::NodeId b = net.AddNode([&](const sim::Datagram&) {
    received = true;
  });
  net.Send(a, b, util::Bytes{1, 2, 3});
  sim.Run();
  EXPECT_TRUE(received);
#if ROOTLESS_OBS_TRACE
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, std::string("net.flight"));
  EXPECT_EQ(tracer.spans()[0].end - tracer.spans()[0].start,
            20 * sim::kMillisecond);  // default uniform latency
#endif
}

TEST(ObsTracer, ResolutionLifecycleSpans) {
  sim::Simulator sim;
  obs::Registry& reg = obs::Registry::Default();
  sim::Network net(sim, 5, &reg);
  topo::Topology geo;
  net.set_latency_fn(geo.LatencyFn());
  obs::Tracer tracer = sim.MakeTracer();
  tracer.set_enabled(true);
  sim.SetTracer(&tracer);

  zone::EvolutionConfig zconfig;
  zconfig.legacy_tld_count = 20;
  zconfig.peak_tld_count = 30;
  const zone::RootZoneModel model(zconfig);
  const zone::SnapshotPtr snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2019, 4, 1}));
  rootsrv::TldFarm farm(net, geo, *snapshot, 2);

  resolver::ResolverConfig rconfig;
  rconfig.mode = resolver::RootMode::kOnDemandZoneFile;
  rconfig.seed = 3;
  resolver::RecursiveResolver r(sim, net, {rconfig, {0, 0}});
  r.SetTldFarm(&farm);
  r.SetLocalZone(snapshot);

  bool done = false;
  r.Resolve(*dns::Name::Parse("www.com."), dns::RRType::kA,
            [&](const resolver::ResolutionResult& result) {
              done = result.rcode == dns::RCode::kNoError;
            });
  sim.Run();
  EXPECT_TRUE(done);
#if ROOTLESS_OBS_TRACE
  std::vector<std::string> names;
  for (const auto& s : tracer.spans()) names.push_back(s.name);
  // The lifecycle: resolve → local-root leg → tld leg (plus net.flight
  // spans for each datagram). Every span must be closed at sim.Run() end.
  EXPECT_NE(std::find(names.begin(), names.end(), "resolve"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "local-root"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "tld"), names.end());
  for (const auto& s : tracer.spans()) {
    EXPECT_GE(s.end, s.start) << s.name << " left open";
  }
  // Stage spans are children of the resolve span.
  const auto& spans = tracer.spans();
  obs::SpanId resolve_id = obs::kNoSpan;
  for (const auto& s : spans) {
    if (std::string(s.name) == "resolve") resolve_id = s.id;
  }
  for (const auto& s : spans) {
    if (std::string(s.name) == "local-root" ||
        std::string(s.name) == "tld") {
      EXPECT_EQ(s.parent, resolve_id);
    }
  }
#endif
}

// ---------------------------------------------------------------- export

TEST(ObsExport, RunHeaderCarriesSeedAndConfig) {
  const obs::RunInfo info{"mybench", 42, "knob=3"};
  const std::string header = obs::RunHeader(info);
  EXPECT_NE(header.find("[run] bench=mybench"), std::string::npos);
  EXPECT_NE(header.find("seed=42"), std::string::npos);
  EXPECT_NE(header.find("config=\"knob=3\""), std::string::npos);
  EXPECT_NE(header.find("git="), std::string::npos);
}

TEST(ObsExport, TableAggregatesInstances) {
  obs::Registry reg;
  reg.counter("resolver.queries", obs::Labels{"0", "", ""}).Inc(10);
  reg.counter("resolver.queries", obs::Labels{"1", "", ""}).Inc(32);
  const std::string table = obs::RenderMetricsTable(reg);
  EXPECT_NE(table.find("resolver.queries"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("across 2 instances"), std::string::npos);
}

TEST(ObsExport, JsonSchemaAndValues) {
  obs::Registry reg;
  reg.counter("a.count").Inc(7);
  reg.gauge("b.level").Set(-2);
  reg.histogram("c.lat").Record(5);
  const obs::RunInfo info{"jbench", 9, "x=1"};
  const std::string json = obs::MetricsJson(info, reg);
  EXPECT_NE(json.find("\"schema\": \"rootless-obs-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"jbench\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"a.count\", \"kind\": \"counter\", "
                      "\"value\": 7"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"b.level\", \"kind\": \"gauge\", "
                      "\"value\": -2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"c.lat\", \"kind\": \"histogram\""),
            std::string::npos);
}

// ----------------------------------------------- snapshot-view stats ports

TEST(ObsPorts, CacheStatsSnapshotTracksRegistry) {
  obs::Registry reg;
  resolver::DnsCache cache(0, &reg);
  const dns::RRset rr{*dns::Name::Parse("com."),
                      dns::RRType::kNS,
                      dns::RRClass::kIN,
                      60,
                      {dns::NsData{*dns::Name::Parse("a.gtld.")}}};
  cache.Put(rr, 0);
  EXPECT_NE(cache.Get(rr.key(), 1), nullptr);
  EXPECT_EQ(cache.Get(dns::RRsetKey{*dns::Name::Parse("net."),
                                    dns::RRType::kNS, dns::RRClass::kIN},
                      1),
            nullptr);
  const resolver::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  // And the same numbers are visible through the registry.
  std::uint64_t hits = 0;
  for (const auto& s : reg.Snapshot()) {
    if (s.name == "resolver.cache.hits") hits += s.counter;
  }
  EXPECT_EQ(hits, 1u);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().hits, 0u);
}

// --------------------------------------------- refresh daemon transitions

// Fetches succeed/fail on command; time is driven with RunUntil so each
// stats transition is observed at its scheduled moment.
TEST(ObsPorts, RefreshDaemonStatsTransitions) {
  sim::Simulator sim;
  resolver::RefreshConfig config;  // validity 48h, lead 6h, retry 1h
  bool fail = false;
  std::uint64_t applies = 0;
  auto zone_ptr = zone::ZoneSnapshot::Build(zone::Zone());
  resolver::RefreshDaemon daemon(
      sim,
      {config,
       {{"fetch",
         [&](std::function<void(resolver::RefreshDaemon::FetchResult)> done) {
           if (fail) {
             done(util::Error("mirror down"));
           } else {
             done(zone_ptr);
           }
         }}},
       [&](zone::SnapshotPtr) { ++applies; }});

  daemon.Start(zone_ptr);
  EXPECT_EQ(applies, 1u);
  EXPECT_EQ(daemon.stats().fetch_attempts, 0u);

  // First refresh fires at validity - lead = 42h and succeeds.
  sim.RunUntil(42 * sim::kHour);
  {
    const resolver::RefreshStats s = daemon.stats();
    EXPECT_EQ(s.fetch_attempts, 1u);
    EXPECT_EQ(s.refreshes, 1u);
    EXPECT_EQ(s.fetch_failures, 0u);
    EXPECT_EQ(s.expirations, 0u);
  }
  EXPECT_EQ(applies, 2u);
  EXPECT_EQ(daemon.expiry(), 42 * sim::kHour + 48 * sim::kHour);

  // Now the mirror goes down: the next attempt at 84h fails and retries
  // hourly. 6 failures fit before the 90h expiry.
  fail = true;
  sim.RunUntil(89 * sim::kHour + 59 * sim::kMinute);
  {
    const resolver::RefreshStats s = daemon.stats();
    EXPECT_EQ(s.fetch_attempts, 7u);  // 1 success + 6 failures
    EXPECT_EQ(s.fetch_failures, 6u);
    EXPECT_EQ(s.expirations, 0u);     // still inside the lead window
  }
  EXPECT_TRUE(daemon.zone_valid());

  // The copy lapses at 90h; the first post-expiry failure records it.
  sim.RunUntil(90 * sim::kHour + 1);
  EXPECT_FALSE(daemon.zone_valid());
  sim.RunUntil(91 * sim::kHour);
  {
    const resolver::RefreshStats s = daemon.stats();
    EXPECT_EQ(s.expirations, 1u);
    EXPECT_GE(s.fetch_failures, 7u);
    EXPECT_EQ(s.stale_time, 0);  // accumulated only once service recovers
  }

  // Recovery: the next retry succeeds, stale time covers expiry → now.
  fail = false;
  sim.RunUntil(92 * sim::kHour);
  {
    const resolver::RefreshStats s = daemon.stats();
    EXPECT_EQ(s.refreshes, 2u);
    EXPECT_EQ(s.stale_time, 2 * sim::kHour);  // expired 90h, refetched 92h
    EXPECT_EQ(s.expirations, 1u);
  }
  EXPECT_TRUE(daemon.zone_valid());
  EXPECT_EQ(applies, 3u);
}

// ------------------------------------------- fetch service accounting

TEST(ObsPorts, FetchServiceOutageAccounting) {
  sim::Simulator sim;
  auto zone_ptr = zone::ZoneSnapshot::Build(zone::Zone());
  distrib::ZoneFetchService service(sim, {{}, [&]() { return zone_ptr; }});
  service.AddOutage(0, sim::kHour);

  int failures = 0, successes = 0;
  auto record = [&](distrib::ZoneFetchService::FetchResult result) {
    (result.ok() ? successes : failures)++;
  };
  service.Fetch(record);
  service.Fetch(record);
  sim.Run();
  EXPECT_EQ(failures, 2);

  // Outside the window the same service recovers; bytes accrue only for
  // fetches that actually transfer.
  sim.ScheduleAt(2 * sim::kHour, [&]() { service.Fetch(record); });
  sim.Run();
  EXPECT_EQ(successes, 1);
  const distrib::FetchServiceStats stats = service.stats();
  EXPECT_EQ(stats.fetches, 3u);
  EXPECT_EQ(stats.failures, 2u);
  EXPECT_EQ(stats.validation_failures, 0u);
  EXPECT_GT(stats.bytes_served, 0u);
}

TEST(ObsPorts, FetchServiceVerifyFailureAccounting) {
  sim::Simulator sim;
  util::Rng rng(77);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  crypto::KeyStore store;
  store.AddKey(zsk);

  // An unsigned zone served through a verifying fetch service fails
  // validation (no RRSIGs at all), and the failure is accounted.
  zone::Zone plain;
  ASSERT_TRUE(plain
                  .AddRecord({*dns::Name::Parse("com."), dns::RRType::kNS,
                              dns::RRClass::kIN, 60,
                              dns::NsData{*dns::Name::Parse("a.gtld.")}})
                  .ok());
  distrib::FetchServiceConfig config;
  config.verify_signatures = true;
  config.validation_now = 500;
  distrib::ZoneFetchService service(
      sim, {config, [&]() { return zone::ZoneSnapshot::Build(plain); }});
  service.SetTrust(zsk.dnskey, store);

  bool ok = true;
  service.Fetch(
      [&](distrib::ZoneFetchService::FetchResult result) { ok = result.ok(); });
  sim.Run();
  EXPECT_FALSE(ok);
  const distrib::FetchServiceStats stats = service.stats();
  EXPECT_EQ(stats.fetches, 1u);
  EXPECT_EQ(stats.validation_failures, 1u);
  EXPECT_EQ(stats.failures, 0u);  // outage counter untouched
}

}  // namespace
}  // namespace rootless
