// Structural tests of the workload generator beyond the headline mix:
// diurnal shape, per-pair burst structure, scaling behaviour, and the
// separation between bogus-only and regular resolvers.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "traffic/classify.h"
#include "traffic/workload.h"
#include "zone/evolution.h"

namespace rootless::traffic {
namespace {

const std::vector<std::string>& RealTlds() {
  static const std::vector<std::string>* tlds = [] {
    const zone::RootZoneModel model;
    auto* out = new std::vector<std::string>();
    for (const auto* tld : model.ActiveTlds({2018, 4, 11}))
      out->push_back(tld->label);
    return out;
  }();
  return *tlds;
}

const std::set<std::string>& TldSet() {
  static const std::set<std::string>* s = [] {
    auto* out = new std::set<std::string>();
    for (const auto& t : RealTlds()) out->insert(t);
    return out;
  }();
  return *s;
}

WorkloadConfig Config(double scale) {
  WorkloadConfig config;
  config.scale = scale;
  return config;
}

TEST(WorkloadStructure, QueryCountScalesLinearly) {
  const auto small = GenerateDitlTrace(Config(0.0001), RealTlds());
  const auto large = GenerateDitlTrace(Config(0.0002), RealTlds());
  const double ratio = static_cast<double>(large.events.size()) /
                       static_cast<double>(small.events.size());
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(WorkloadStructure, DiurnalShapeIsPresent) {
  const auto trace = GenerateDitlTrace(Config(0.0003), RealTlds());
  // Split the day into 8 bins; max/min bin ratio should show the swing but
  // stay bounded (the generator uses a 0.75 +/- 0.25 acceptance curve).
  std::uint64_t bins[8] = {};
  for (const auto& e : trace.events) ++bins[e.time_sec / (86400 / 8)];
  std::uint64_t lo = bins[0], hi = bins[0];
  for (auto b : bins) {
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_GT(static_cast<double>(hi) / lo, 1.15);
  EXPECT_LT(static_cast<double>(hi) / lo, 3.0);
}

TEST(WorkloadStructure, BogusOnlyResolversNeverQueryRealTlds) {
  WorkloadSummary summary;
  const auto trace = GenerateDitlTrace(Config(0.0002), RealTlds(), &summary);
  // Resolver ids below bogus_only count are the junk-only population.
  for (const auto& e : trace.events) {
    if (e.resolver_id < summary.bogus_only_resolvers) {
      EXPECT_EQ(TldSet().count(trace.tlds.LabelOf(e.tld)), 0u)
          << trace.tlds.LabelOf(e.tld);
    }
  }
}

TEST(WorkloadStructure, ValidPairsAreBursty) {
  // The §2.2 numbers require per-(resolver,TLD) queries concentrated in few
  // 15-minute slots: mean slots-per-pair must be near the configured 6.6,
  // far below the mean queries-per-pair (~78).
  const auto trace = GenerateDitlTrace(Config(0.0005), RealTlds());
  std::map<std::uint64_t, std::set<std::uint32_t>> slots;
  std::map<std::uint64_t, std::uint64_t> counts;
  for (const auto& e : trace.events) {
    if (TldSet().count(trace.tlds.LabelOf(e.tld)) == 0) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.resolver_id) << 20) | e.tld;
    slots[key].insert(e.time_sec / 900);
    ++counts[key];
  }
  double slot_sum = 0, count_sum = 0;
  for (const auto& [key, s] : slots) slot_sum += static_cast<double>(s.size());
  for (const auto& [key, c] : counts) count_sum += static_cast<double>(c);
  const double mean_slots = slot_sum / static_cast<double>(slots.size());
  const double mean_queries = count_sum / static_cast<double>(counts.size());
  EXPECT_NEAR(mean_slots, 6.6, 1.5);
  EXPECT_GT(mean_queries, 8 * mean_slots);
}

TEST(WorkloadStructure, DifferentSeedsDifferButCalibrationHolds) {
  WorkloadConfig a = Config(0.0003);
  WorkloadConfig b = Config(0.0003);
  b.seed = 777;
  const auto trace_a = GenerateDitlTrace(a, RealTlds());
  const auto trace_b = GenerateDitlTrace(b, RealTlds());
  // Different event streams...
  bool any_diff = trace_a.events.size() != trace_b.events.size();
  for (std::size_t i = 0; !any_diff && i < trace_a.events.size(); i += 1009) {
    any_diff = trace_a.events[i].time_sec != trace_b.events[i].time_sec;
  }
  EXPECT_TRUE(any_diff);
  // ...same calibrated mix.
  const auto is_real = [&](const std::string& t) {
    return TldSet().count(t) > 0;
  };
  const auto report_a = ClassifyTrace(trace_a, is_real);
  const auto report_b = ClassifyTrace(trace_b, is_real);
  EXPECT_NEAR(report_a.bogus_fraction(), report_b.bogus_fraction(), 0.01);
  EXPECT_NEAR(report_a.valid_budget_fraction(),
              report_b.valid_budget_fraction(), 0.01);
}

TEST(WorkloadStructure, CustomMixParametersRespected) {
  WorkloadConfig config = Config(0.0002);
  config.bogus_query_fraction = 0.30;
  const auto trace = GenerateDitlTrace(config, RealTlds());
  const auto report = ClassifyTrace(trace, [&](const std::string& t) {
    return TldSet().count(t) > 0;
  });
  EXPECT_NEAR(report.bogus_fraction(), 0.30, 0.02);
}

TEST(WorkloadStructure, WindowParameterBoundsTimestamps) {
  WorkloadConfig config = Config(0.0001);
  config.window_sec = 3600;
  const auto trace = GenerateDitlTrace(config, RealTlds());
  for (const auto& e : trace.events) EXPECT_LT(e.time_sec, 3600u);
}

}  // namespace
}  // namespace rootless::traffic
