// Hot-path regression tests: flattened Name invariants, the intrusive-LRU
// cache against a reference model, the EventFn small-buffer callable, and
// differential checks that both simulator queue policies (binary heap and
// two-level calendar) execute events in exactly the same deterministic order.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstring>
#include <iterator>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "resolver/cache.h"
#include "sim/event.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/simd.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRset;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// ------------------------------------------------------------ Name property

// Random names built from raw labels (including bytes that need escaping and
// bytes that mimic wire length octets) survive every representation change:
// text, wire, copies across the inline/heap boundary.
TEST(NameHotPath, RandomLabelsRoundTripAllRepresentations) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::string> labels;
    std::size_t flat = 0;
    const std::size_t want = 1 + rng.Below(6);
    while (labels.size() < want) {
      std::string label;
      const std::size_t len = 1 + rng.Below(20);
      for (std::size_t i = 0; i < len; ++i) {
        label.push_back(static_cast<char>(rng.Below(256)));
      }
      if (flat + 1 + label.size() > Name::kMaxFlatBytes) break;
      flat += 1 + label.size();
      labels.push_back(std::move(label));
    }
    auto name = Name::FromLabels(labels);
    ASSERT_TRUE(name.ok());
    ASSERT_EQ(name->label_count(), labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(name->label(i), labels[i]);
    }

    // Text round trip (escapes: \DDD and \X).
    auto reparsed = Name::Parse(name->ToString());
    ASSERT_TRUE(reparsed.ok()) << name->ToString();
    EXPECT_EQ(*reparsed, *name);
    EXPECT_EQ(reparsed->Hash(), name->Hash());

    // Wire round trip.
    util::ByteWriter w;
    name->EncodeWire(w);
    util::ByteReader r(w.span());
    auto decoded = Name::DecodeWire(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, *name);

    // Copy and move across the small-buffer boundary.
    Name copy = *name;
    EXPECT_EQ(copy, *name);
    Name moved = std::move(copy);
    EXPECT_EQ(moved, *name);
    EXPECT_EQ(moved.Hash(), name->Hash());
  }
}

// Case variants agree on equality, ordering, and hash; different names
// disagree on equality.
TEST(NameHotPath, CaseVariantsAgreeEverywhere) {
  util::Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    const std::size_t nlabels = 1 + rng.Below(4);
    for (std::size_t l = 0; l < nlabels; ++l) {
      if (l > 0) text.push_back('.');
      const std::size_t len = 1 + rng.Below(12);
      for (std::size_t i = 0; i < len; ++i) {
        text.push_back("abcdefghijklmnopqrstuvwxyz0123456789-"[rng.Below(37)]);
      }
    }
    std::string upper = text;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    const Name a = N(text);
    const Name b = N(upper);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.Hash(), b.Hash());
    EXPECT_EQ(a <=> b, std::weak_ordering::equivalent);
    EXPECT_EQ(a.CanonicalWire(), b.CanonicalWire());

    const Name other = N("x" + text);
    EXPECT_NE(a, other);
  }
}

TEST(NameHotPath, LabelAndWireLimits) {
  const std::string label63(63, 'a');
  EXPECT_TRUE(Name::Parse(label63 + ".com").ok());
  EXPECT_FALSE(Name::Parse(std::string(64, 'a') + ".com").ok());

  // Four 63-byte labels need 4*64 = 256 wire bytes incl. the root octet:
  // one over the RFC 1035 limit of 255.
  const std::string too_long =
      label63 + "." + label63 + "." + label63 + "." + label63;
  EXPECT_FALSE(Name::Parse(too_long).ok());
  // 61+63+63+63 labels = 255 wire bytes (62+64+64+64+root): at the limit.
  const std::string at_limit =
      std::string(61, 'a') + "." + label63 + "." + label63 + "." + label63;
  auto name = Name::Parse(at_limit);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->wire_length(), 255u);
  EXPECT_EQ(*Name::Parse(name->ToString()), *name);
}

TEST(NameHotPath, InlineHeapBoundaryBehavesIdentically) {
  // Names straddling kInlineCapacity flat bytes (inline vs heap storage).
  for (std::size_t len : {Name::kInlineCapacity - 2, Name::kInlineCapacity - 1,
                          Name::kInlineCapacity, Name::kInlineCapacity + 1,
                          Name::kInlineCapacity + 2}) {
    const std::string label(len - 1, 'x');  // flat size = 1 + label bytes
    auto name = Name::Parse(label);
    ASSERT_TRUE(name.ok());
    ASSERT_EQ(name->flat().size(), len);
    Name copy = *name;
    Name moved_to;
    moved_to = std::move(copy);
    EXPECT_EQ(moved_to, *name);
    EXPECT_EQ(moved_to.ToString(), name->ToString());
    EXPECT_EQ(moved_to.tld_view(), name->tld_view());
  }
}

TEST(NameHotPath, SuffixAndTldViewsMatchSlowPath) {
  const Name name = N("a.b.c.example.ORG");
  EXPECT_EQ(name.tld_view(), "ORG");
  EXPECT_EQ(name.tld(), "org");  // tld() lowercases, the view does not
  EXPECT_EQ(name.Suffix(1), N("org"));
  EXPECT_EQ(name.Suffix(2), N("example.org"));
  EXPECT_EQ(name.Suffix(0), Name());
  EXPECT_EQ(name.Parent(), N("b.c.example.org"));
  EXPECT_TRUE(name.IsSubdomainOf(N("EXAMPLE.org")));
  EXPECT_FALSE(N("example.org").IsSubdomainOf(name));
}

// ----------------------------------------------------------------- cache

RRset MakeA(std::string_view owner, std::uint32_t ttl, std::uint32_t addr) {
  RRset s;
  s.name = N(owner);
  s.type = RRType::kA;
  s.ttl = ttl;
  s.rdatas.push_back(dns::AData{dns::Ipv4{addr}});
  return s;
}

TEST(CacheHotPath, ExactEvictionOrder) {
  resolver::DnsCache cache(4);
  const sim::SimTime t = 0;
  for (const char* o : {"a.test", "b.test", "c.test", "d.test"}) {
    cache.Put(MakeA(o, 3600, 1), t);
  }
  // Touch a: LRU order (old->new) becomes b, c, d, a.
  EXPECT_NE(cache.Get(MakeA("a.test", 0, 0).key(), t), nullptr);
  cache.Put(MakeA("e.test", 3600, 1), t);  // evicts b
  EXPECT_FALSE(cache.Contains(MakeA("b.test", 0, 0).key(), t));
  EXPECT_TRUE(cache.Contains(MakeA("c.test", 0, 0).key(), t));
  cache.Put(MakeA("f.test", 3600, 1), t);  // evicts c
  EXPECT_FALSE(cache.Contains(MakeA("c.test", 0, 0).key(), t));
  for (const char* o : {"d.test", "a.test", "e.test", "f.test"}) {
    EXPECT_TRUE(cache.Contains(MakeA(o, 0, 0).key(), t)) << o;
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(CacheHotPath, ExpiredEntriesLoseToLiveOnesViaSweep) {
  resolver::DnsCache cache(100);
  // Two entries that expire at t=10s, then a stream of live Puts. The lazy
  // sweep must reclaim the dead ones without evicting anything live.
  cache.Put(MakeA("dead1.test", 10, 1), 0);
  cache.Put(MakeA("dead2.test", 10, 1), 0);
  const sim::SimTime later = 20 * sim::kSecond;
  for (int i = 0; i < 50; ++i) {
    cache.Put(MakeA("live" + std::to_string(i) + ".test", 3600, 1), later);
  }
  EXPECT_EQ(cache.stats().swept, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(
        cache.Contains(MakeA("live" + std::to_string(i) + ".test", 0, 0).key(),
                       later));
  }
}

TEST(CacheHotPath, ExpiryBeatsRecency) {
  resolver::DnsCache cache(10);
  cache.Put(MakeA("gone.test", 1, 1), 0);
  // Keep it most-recently-used right up to expiry.
  EXPECT_NE(cache.Get(MakeA("gone.test", 0, 0).key(), sim::kSecond - 1),
            nullptr);
  // Recency does not save an expired entry.
  EXPECT_EQ(cache.Get(MakeA("gone.test", 0, 0).key(), 2 * sim::kSecond),
            nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_FALSE(cache.Contains(MakeA("gone.test", 0, 0).key(), 0));
}

TEST(CacheHotPath, TldCountTracksEviction) {
  resolver::DnsCache cache(3);
  cache.Put(MakeA("com", 3600, 1), 0);
  cache.Put(MakeA("org", 3600, 1), 0);
  cache.Put(MakeA("www.example.com", 3600, 1), 0);
  EXPECT_EQ(cache.TldRRsetCount(), 2u);
  cache.Put(MakeA("net", 3600, 1), 0);  // evicts "com" (LRU)
  EXPECT_EQ(cache.TldRRsetCount(), 2u);
  EXPECT_FALSE(cache.Contains(MakeA("com", 0, 0).key(), 0));
}

// Model-based stress: the intrusive-LRU cache against a textbook
// list+map implementation, including keys that collide in the hash table
// (single-letter owners across two RR types keep bucket chains busy).
TEST(CacheHotPath, MatchesReferenceModelUnderStress) {
  constexpr std::size_t kCapacity = 32;
  resolver::DnsCache cache(kCapacity);

  struct Model {
    std::list<dns::RRsetKey> lru;  // front = most recent
    std::unordered_map<dns::RRsetKey, std::list<dns::RRsetKey>::iterator,
                       dns::RRsetKeyHash>
        pos;
    void Touch(const dns::RRsetKey& key) {
      lru.splice(lru.begin(), lru, pos[key]);
    }
    void Put(const dns::RRsetKey& key) {
      if (auto it = pos.find(key); it != pos.end()) {
        Touch(key);
        return;
      }
      lru.push_front(key);
      pos[key] = lru.begin();
      if (pos.size() > kCapacity) {
        pos.erase(lru.back());
        lru.pop_back();
      }
    }
  } model;

  util::Rng rng(99);
  std::vector<RRset> pool;
  for (char c = 'a'; c <= 'z'; ++c) {
    pool.push_back(MakeA(std::string(1, c) + ".test", 3600, 1));
    RRset ns;
    ns.name = N(std::string(1, c) + ".test");
    ns.type = RRType::kNS;
    ns.ttl = 3600;
    ns.rdatas.push_back(dns::NsData{N("ns." + std::string(1, c) + ".test")});
    pool.push_back(ns);
  }
  for (int step = 0; step < 20000; ++step) {
    const RRset& r = pool[rng.Below(pool.size())];
    if (rng.Below(2) == 0) {
      cache.Put(r, 0);
      model.Put(r.key());
    } else {
      const bool hit = cache.Get(r.key(), 0) != nullptr;
      const bool model_hit = model.pos.count(r.key()) > 0;
      ASSERT_EQ(hit, model_hit) << "step " << step;
      if (model_hit) model.Touch(r.key());
    }
  }
  ASSERT_EQ(cache.size(), model.pos.size());
  for (const auto& key : model.lru) {
    EXPECT_TRUE(cache.Contains(key, 0));
  }
}

// ------------------------------------------------------------ SIMD kernels

// Byte-at-a-time reference for the util/simd.h contract. Whatever backend a
// build compiled in (SSE2, NEON, or the SWAR scalar) must reproduce these
// values bit for bit — that equivalence is what makes a ROOTLESS_SIMD=OFF
// replay byte-identical to a vectorized one.
std::uint8_t RefFold(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<std::uint8_t>(c | 0x20) : c;
}

std::uint64_t RefMix(std::uint64_t a, std::uint64_t b) {
  const unsigned __int128 r =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<std::uint64_t>(r) ^ static_cast<std::uint64_t>(r >> 64);
}

std::uint64_t RefHashFold(const std::uint8_t* p, std::size_t n,
                          std::uint64_t seed = 0) {
  constexpr std::uint64_t k0 = 0x2D358DCCAA6C78A5ULL;
  constexpr std::uint64_t k1 = 0x8BB84B93962EACC9ULL;
  constexpr std::uint64_t k2 = 0x4B33A62ED433D4A3ULL;
  constexpr std::uint64_t k3 = 0x4D5A2DA51DE1AA47ULL;
  constexpr std::uint64_t k4 = 0xA0761D6478BD642FULL;
  std::vector<std::uint8_t> folded(n);
  for (std::size_t i = 0; i < n; ++i) folded[i] = RefFold(p[i]);
  std::uint64_t h = seed ^ RefMix(static_cast<std::uint64_t>(n) + k0, k1);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, folded.data() + i, 8);
    h = RefMix(h ^ w, k2);
  }
  if (i < n) {
    std::uint64_t w = 0;
    std::memcpy(&w, folded.data() + i, n - i);
    h = RefMix(h ^ w, k3);
  }
  return RefMix(h, k4);
}

// Bytes picked to sit on every interesting boundary of the fold: the letters
// themselves, their neighbours ('@' = 'A'-1, '[' = 'Z'+1, '`' = 'a'-1,
// '{' = 'z'+1), NUL, DEL, and high bytes whose low 7 bits alias the letter
// range (0xC1 = 0x80|'A' must NOT fold).
constexpr std::uint8_t kAdversarialBytes[] = {
    0x00, '@',  'A',  'M',  'Z',  '[',  '`',  'a',  'm',  'z',
    '{',  0x7F, 0x80, 0xC1, 0xDA, 0xE1, 0xFA, 0xFF, '0',  '-'};

TEST(SimdKernels, FoldAndHashMatchBytewiseReference) {
  util::Rng rng(515);
  // Lengths crossing the 16-byte vector and 8-byte word boundaries, the
  // 63-byte label limit, the 254-byte name limit, and the 256-byte internal
  // block size of HashFold.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 70; ++n) lengths.push_back(n);
  for (std::size_t n : {127u, 128u, 254u, 255u, 256u, 300u}) {
    lengths.push_back(n);
  }
  for (const std::size_t n : lengths) {
    std::vector<std::uint8_t> src(n + 1, 0xA5);  // +1: never a zero-size buf
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = kAdversarialBytes[rng.Below(sizeof(kAdversarialBytes))];
    }
    // FoldCopy == bytewise fold.
    std::vector<std::uint8_t> folded(n + 1, 0xEE);
    util::simd::FoldCopy(folded.data(), src.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(folded[i], RefFold(src[i])) << "n=" << n << " i=" << i;
    }
    // HashFold == reference recurrence, with and without a seed.
    ASSERT_EQ(util::simd::HashFold(src.data(), n),
              RefHashFold(src.data(), n)) << "n=" << n;
    ASSERT_EQ(util::simd::HashFold(src.data(), n, 0x1234),
              RefHashFold(src.data(), n, 0x1234)) << "n=" << n;
    // EqualFold: true for a case-flipped copy, false when any single byte
    // changes to something that folds differently.
    std::vector<std::uint8_t> flipped(src);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t c = flipped[i];
      if (c >= 'A' && c <= 'Z') flipped[i] = static_cast<std::uint8_t>(c | 0x20);
      else if (c >= 'a' && c <= 'z') flipped[i] = static_cast<std::uint8_t>(c & ~0x20);
    }
    ASSERT_TRUE(util::simd::EqualFold(src.data(), flipped.data(), n));
    ASSERT_EQ(util::simd::HashFold(flipped.data(), n),
              util::simd::HashFold(src.data(), n));
    if (n > 0) {
      for (const std::size_t at :
           {std::size_t{0}, n / 2, n - 1}) {
        std::vector<std::uint8_t> diff(src);
        diff[at] ^= 0x04;  // never a pure case flip
        ASSERT_FALSE(util::simd::EqualFold(src.data(), diff.data(), n))
            << "n=" << n << " at=" << at;
      }
    }
  }
}

TEST(SimdKernels, NonLetterCaseBitNeverFolds) {
  // '@'/'`' and '['/'{' differ only in the 0x20 bit but are distinct bytes
  // in DNS labels; same for high bytes aliasing letters (0xC1/0xE1). A fold
  // that tests the range sloppily equates them.
  const std::uint8_t pairs[][2] = {
      {'@', '`'}, {'[', '{'}, {0xC1, 0xE1}, {0xDA, 0xFA}, {0x00, 0x20}};
  for (const auto& p : pairs) {
    ASSERT_FALSE(util::simd::EqualFold(&p[0], &p[1], 1))
        << std::hex << int(p[0]) << " vs " << int(p[1]);
    ASSERT_NE(util::simd::HashFold(&p[0], 1), util::simd::HashFold(&p[1], 1));
  }
}

TEST(NameHotPath, AdversarialLabelEqualityAndViews) {
  // 63-byte labels at the 255-byte wire limit, differing only by case.
  const std::string l63u(63, 'A');
  const std::string l63l(63, 'a');
  const Name big_u =
      *Name::FromLabels({std::string(61, 'A'), l63u, l63u, l63u});
  const Name big_l =
      *Name::FromLabels({std::string(61, 'a'), l63l, l63l, l63l});
  EXPECT_EQ(big_u, big_l);
  EXPECT_EQ(big_u.Hash(), big_l.Hash());

  // Embedded NULs pass through the fold untouched.
  const Name z1 = *Name::FromLabels({std::string("a\0B", 3), "example"});
  const Name z2 = *Name::FromLabels({std::string("a\0b", 3), "example"});
  const Name z3 = *Name::FromLabels({std::string("a\0c", 3), "example"});
  EXPECT_EQ(z1, z2);
  EXPECT_EQ(z1.Hash(), z2.Hash());
  EXPECT_NE(z1, z3);

  // NameView/SuffixView agree with the owned slow path on equality and hash.
  const Name qname = N("WWW.Example.COM");
  const dns::NameView tld = qname.SuffixView(1);
  EXPECT_EQ(tld.label_count(), 1u);
  EXPECT_TRUE(N("com") == tld);
  EXPECT_TRUE(N("CoM") == tld);
  EXPECT_FALSE(N("net") == tld);
  EXPECT_EQ(tld.Hash(), N("com").Hash());
  EXPECT_EQ(qname.SuffixView(2).Hash(), N("example.com").Hash());
  EXPECT_TRUE(qname == qname.SuffixView(99));  // clamped to the whole name
  EXPECT_TRUE(qname.SuffixView(0).is_root());
  EXPECT_EQ(dns::NameView(qname).Hash(), qname.Hash());
}

TEST(CacheHotPath, SuffixViewProbeHitsSameEntry) {
  resolver::DnsCache cache;
  RRset ns;
  ns.name = N("com");
  ns.type = RRType::kNS;
  ns.ttl = 3600;
  ns.rdatas.push_back(dns::NsData{N("a.gtld-servers.net")});
  cache.Put(ns, 0);

  const Name qname = N("www.example.COM");
  const dns::RRset* via_view = cache.Get(qname.SuffixView(1), RRType::kNS, 0);
  ASSERT_NE(via_view, nullptr);
  EXPECT_EQ(via_view, cache.Get(ns.key(), 0));
  // A different suffix depth misses.
  EXPECT_EQ(cache.Get(qname.SuffixView(2), RRType::kNS, 0), nullptr);
}

// ----------------------------------------------- cache differential models

// Exact mirror of the cache's LRU + lazy-sweep mechanics (including the
// roving cursor), driven with expiring entries and capacity churn: every
// probe outcome and all six stats counters must match step for step. This is
// the tombstone workout for the flat-hash index — at capacity each insert is
// erase+insert (a tombstone plus a fill), and in-place rehashes must never
// lose an entry.
TEST(CacheHotPath, MatchesReferenceModelWithExpiryAndTombstoneChurn) {
  constexpr std::size_t kCapacity = 48;
  constexpr int kSweepPerPut = 2;  // mirrors cache.cc
  resolver::DnsCache cache(kCapacity);

  struct Entry {
    dns::RRsetKey key;
    sim::SimTime expiry;
  };
  struct Model {
    using List = std::list<Entry>;
    List lru;  // front = most recent
    std::unordered_map<dns::RRsetKey, List::iterator, dns::RRsetKeyHash> pos;
    List::iterator cursor;
    bool cursor_set = false;
    std::uint64_t hits = 0, misses = 0, expired = 0;
    std::uint64_t insertions = 0, evictions = 0, swept = 0;

    // cursor = lru_prev(it): one step toward the head; kNil at the head.
    void CursorHop(List::iterator it) {
      if (!cursor_set || cursor != it) return;
      if (it == lru.begin()) {
        cursor_set = false;
      } else {
        cursor = std::prev(it);
      }
    }
    void Erase(List::iterator it) {
      CursorHop(it);
      pos.erase(it->key);
      lru.erase(it);
    }
    void Touch(List::iterator it) {
      if (it == lru.begin()) return;
      CursorHop(it);  // MoveToFront unlinks first, hopping the cursor
      lru.splice(lru.begin(), lru, it);
    }
    void SweepStep(sim::SimTime now) {
      for (int i = 0; i < kSweepPerPut; ++i) {
        if (!cursor_set) {
          if (lru.empty()) return;
          cursor = std::prev(lru.end());  // restart at the tail
          cursor_set = true;
        }
        const List::iterator s = cursor;
        if (s == lru.begin()) {
          cursor_set = false;
        } else {
          cursor = std::prev(s);
        }
        if (s->expiry <= now) {
          // Erase without the hop: the cursor has already advanced past s.
          pos.erase(s->key);
          lru.erase(s);
          ++swept;
        }
      }
    }
    bool Get(const dns::RRsetKey& key, sim::SimTime now) {
      const auto it = pos.find(key);
      if (it == pos.end()) {
        ++misses;
        return false;
      }
      if (it->second->expiry <= now) {
        ++expired;
        Erase(it->second);
        return false;
      }
      ++hits;
      Touch(it->second);
      return true;
    }
    void Put(const dns::RRsetKey& key, sim::SimTime expiry, sim::SimTime now) {
      if (const auto it = pos.find(key); it != pos.end()) {
        it->second->expiry = expiry;  // replace: no counter bumps
        Touch(it->second);
        return;
      }
      ++insertions;
      if (pos.size() >= kCapacity && !lru.empty()) {
        ++evictions;
        Erase(std::prev(lru.end()));
      }
      lru.push_front(Entry{key, expiry});
      pos[key] = lru.begin();
      SweepStep(now);
    }
    bool Contains(const dns::RRsetKey& key, sim::SimTime now) const {
      const auto it = pos.find(key);
      return it != pos.end() && it->second->expiry > now;
    }
    std::size_t Purge(sim::SimTime now) {
      std::size_t removed = 0;
      for (auto it = lru.begin(); it != lru.end();) {
        const auto next = std::next(it);
        if (it->expiry <= now) {
          Erase(it);
          ++removed;
        }
        it = next;
      }
      return removed;
    }
  } model;

  // Key universe ~3x capacity across two RR types, with case-variant owners
  // and 63-byte labels so index confirms run long fold compares.
  std::vector<RRset> pool;
  for (int i = 0; i < 72; ++i) {
    const std::string owner = (i % 3 == 0)
                                  ? std::string(63, static_cast<char>('A' + i % 26)) + ".test"
                                  : "k" + std::to_string(i) + ".Test";
    pool.push_back(MakeA(owner, 3600, static_cast<std::uint32_t>(i)));
    RRset ns;
    ns.name = N(owner);
    ns.type = RRType::kNS;
    ns.ttl = 3600;
    ns.rdatas.push_back(dns::NsData{N("ns." + std::to_string(i) + ".test")});
    pool.push_back(ns);
  }

  util::Rng rng(4242);
  sim::SimTime now = 0;
  for (int step = 0; step < 30000; ++step) {
    now += static_cast<sim::SimTime>(rng.Below(200)) * sim::kMillisecond;
    RRset r = pool[rng.Below(pool.size())];
    switch (rng.Below(4)) {
      case 0:
      case 1: {  // Put, short-lived or long-lived (0 = born expired)
        r.ttl = rng.Below(2) ? 3600 : rng.Below(3);
        cache.Put(r, now);
        model.Put(r.key(),
                  now + static_cast<sim::SimTime>(r.ttl) * sim::kSecond, now);
        break;
      }
      case 2: {
        const bool hit = cache.Get(r.key(), now) != nullptr;
        ASSERT_EQ(hit, model.Get(r.key(), now)) << "step " << step;
        break;
      }
      case 3: {
        ASSERT_EQ(cache.Contains(r.key(), now), model.Contains(r.key(), now))
            << "step " << step;
        break;
      }
    }
    if ((step & 0x7FF) == 0x7FF) {
      ASSERT_EQ(cache.PurgeExpired(now), model.Purge(now)) << "step " << step;
    }
    ASSERT_EQ(cache.size(), model.pos.size()) << "step " << step;
  }

  const resolver::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, model.hits);
  EXPECT_EQ(stats.misses, model.misses);
  EXPECT_EQ(stats.expired, model.expired);
  EXPECT_EQ(stats.insertions, model.insertions);
  EXPECT_EQ(stats.evictions, model.evictions);
  EXPECT_EQ(stats.swept, model.swept);
  for (const auto& e : model.lru) {
    EXPECT_TRUE(cache.Contains(e.key, e.expiry - 1));
  }
}

// Long-running erase/insert churn at capacity: tombstones accumulate in the
// control-byte index and periodically force in-place rehashes. A set of
// pinned, regularly touched entries must survive the whole run, and the
// lifecycle counters must account for every inserted entry.
TEST(CacheHotPath, TombstoneChurnKeepsIndexExact) {
  constexpr std::size_t kCapacity = 64;
  resolver::DnsCache cache(kCapacity);

  std::vector<RRset> pinned;
  for (int i = 0; i < 32; ++i) {
    pinned.push_back(MakeA("pin" + std::to_string(i) + ".test", 0, 1));
  }
  sim::SimTime now = 0;
  std::size_t purged = 0;
  const auto touch_pinned = [&] {
    for (const RRset& p : pinned) {
      RRset fresh = p;
      fresh.ttl = 7200;  // re-put: refreshes expiry, no insertion counted
      cache.Put(fresh, now);
    }
  };
  touch_pinned();
  util::Rng rng(31337);
  for (int step = 0; step < 20000; ++step) {
    now += sim::kMillisecond * static_cast<sim::SimTime>(rng.Below(50));
    RRset churn = MakeA("c" + std::to_string(step) + ".churn.test",
                        rng.Below(2), 2);  // ttl 0 or 1s: dies near-instantly
    cache.Put(churn, now);
    if (step % 16 == 15) touch_pinned();
    if (step % 1024 == 1023) purged += cache.PurgeExpired(now);
    if (step % 128 == 0) {
      for (const RRset& p : pinned) {
        ASSERT_TRUE(cache.Contains(p.key(), now)) << "step " << step;
      }
    }
    ASSERT_LE(cache.size(), kCapacity);
  }
  // Every inserted entry is resident or left by exactly one exit path.
  const resolver::CacheStats stats = cache.stats();
  EXPECT_EQ(cache.size(), stats.insertions - stats.evictions - stats.swept -
                              stats.expired - purged);
  for (const RRset& p : pinned) {
    EXPECT_TRUE(cache.Contains(p.key(), now));
  }
}

// ----------------------------------------------------------------- EventFn

TEST(EventFn, InvokesInlineAndHeapCallables) {
  int hits = 0;
  sim::EventFn small([&hits]() { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture (> kInlineSize) exercises the heap path.
  std::array<std::uint64_t, 16> big{};
  big[15] = 7;
  int got = 0;
  sim::EventFn large([big, &got]() { got = static_cast<int>(big[15]); });
  large();
  EXPECT_EQ(got, 7);
}

TEST(EventFn, DestroysCaptureOnceAndOnlyOnce) {
  auto token = std::make_shared<int>(42);
  EXPECT_EQ(token.use_count(), 1);
  {
    sim::EventFn fn([token]() {});
    EXPECT_EQ(token.use_count(), 2);
    sim::EventFn moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_TRUE(static_cast<bool>(moved));
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFn, MoveAssignReleasesPreviousCapture) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  sim::EventFn fn([first]() {});
  fn = sim::EventFn([second]() {});
  EXPECT_EQ(first.use_count(), 1);  // old capture destroyed on assignment
  EXPECT_EQ(second.use_count(), 2);
}

// ------------------------------------------------------------ event queues

// Regression for the determinism guarantee (and the old const_cast-move-from
// priority_queue::top()): a large batch of same-timestamp events must fire in
// exact scheduling order under both queue policies.
TEST(SimQueues, FifoTiebreakAtScale) {
  for (sim::QueuePolicy policy :
       {sim::QueuePolicy::kBinaryHeap, sim::QueuePolicy::kCalendar}) {
    sim::Simulator sim(policy);
    std::vector<int> order;
    order.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(500, [&order, i]() { order.push_back(i); });
    }
    sim.Run();
    ASSERT_EQ(order.size(), 10000u);
    for (int i = 0; i < 10000; ++i) {
      ASSERT_EQ(order[i], i) << "policy " << static_cast<int>(policy);
    }
  }
}

// Differential: the heap policy, the calendar policy, and a stable sort of
// the schedule must all agree on execution order. Time spread covers the
// calendar's level-0 ring, level-1 ring, overflow list, and rebase path.
TEST(SimQueues, HeapAndCalendarAgreeOnRandomSchedules) {
  auto run = [](sim::QueuePolicy policy, sim::SimTime* end) {
    sim::Simulator sim(policy);
    std::vector<int> order;
    util::Rng rng(4242);
    constexpr int kTop = 600;
    for (int i = 0; i < kTop; ++i) {
      sim::SimTime when = 0;
      switch (rng.Below(5)) {
        case 0:  // dense: within the current ~1 ms bucket
          when = static_cast<sim::SimTime>(rng.Below(1000));
          break;
        case 1:  // level-0 ring
          when = static_cast<sim::SimTime>(rng.Below(4 * sim::kSecond));
          break;
        case 2:  // level-1 ring
          when = static_cast<sim::SimTime>(rng.Below(4 * sim::kHour));
          break;
        case 3:  // overflow + rebase
          when = 5 * sim::kHour +
                 static_cast<sim::SimTime>(rng.Below(10 * sim::kDay));
          break;
        default:  // duplicates: exercise the FIFO tiebreak
          when = 777;
          break;
      }
      // Some events schedule follow-ups relative to their own firing time.
      const bool chain = rng.Below(4) == 0;
      const auto extra = static_cast<sim::SimTime>(rng.Below(2 * sim::kSecond));
      sim.ScheduleAt(when, [&sim, &order, i, chain, extra]() {
        order.push_back(i);
        if (chain) {
          sim.Schedule(extra, [&order, i]() { order.push_back(10000 + i); });
        }
      });
    }
    sim.Run();
    *end = sim.now();
    return order;
  };
  sim::SimTime heap_end = 0;
  sim::SimTime cal_end = 0;
  const std::vector<int> heap_order =
      run(sim::QueuePolicy::kBinaryHeap, &heap_end);
  const std::vector<int> cal_order = run(sim::QueuePolicy::kCalendar, &cal_end);
  ASSERT_EQ(heap_order.size(), cal_order.size());
  EXPECT_EQ(heap_order, cal_order);
  EXPECT_EQ(heap_end, cal_end);
}

// RunUntil across calendar bucket boundaries: the clock parks exactly at the
// deadline and pending events stay queued, even when they live hours or days
// ahead (level-1 and overflow territory).
TEST(SimQueues, CalendarRunUntilAcrossLevels) {
  sim::Simulator sim(sim::QueuePolicy::kCalendar);
  std::vector<int> fired;
  sim.ScheduleAt(2 * sim::kSecond, [&]() { fired.push_back(1); });
  sim.ScheduleAt(1 * sim::kHour, [&]() { fired.push_back(2); });
  sim.ScheduleAt(3 * sim::kDay, [&]() { fired.push_back(3); });

  sim.RunUntil(sim::kSecond);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sim.now(), sim::kSecond);
  EXPECT_EQ(sim.pending_events(), 3u);

  sim.RunUntil(2 * sim::kHour);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));

  // Scheduling "behind" the peeked cursor but at/after now() still works.
  sim.Schedule(0, [&]() { fired.push_back(4); });
  sim.RunUntil(4 * sim::kDay);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimQueues, CalendarNegativeDelayStillThrows) {
  sim::Simulator sim(sim::QueuePolicy::kCalendar);
  EXPECT_THROW(sim.Schedule(-1, []() {}), std::logic_error);
}

}  // namespace
}  // namespace rootless
