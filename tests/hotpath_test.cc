// Hot-path regression tests: flattened Name invariants, the intrusive-LRU
// cache against a reference model, the EventFn small-buffer callable, and
// differential checks that both simulator queue policies (binary heap and
// two-level calendar) execute events in exactly the same deterministic order.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/name.h"
#include "dns/rr.h"
#include "resolver/cache.h"
#include "sim/event.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRset;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// ------------------------------------------------------------ Name property

// Random names built from raw labels (including bytes that need escaping and
// bytes that mimic wire length octets) survive every representation change:
// text, wire, copies across the inline/heap boundary.
TEST(NameHotPath, RandomLabelsRoundTripAllRepresentations) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    std::vector<std::string> labels;
    std::size_t flat = 0;
    const std::size_t want = 1 + rng.Below(6);
    while (labels.size() < want) {
      std::string label;
      const std::size_t len = 1 + rng.Below(20);
      for (std::size_t i = 0; i < len; ++i) {
        label.push_back(static_cast<char>(rng.Below(256)));
      }
      if (flat + 1 + label.size() > Name::kMaxFlatBytes) break;
      flat += 1 + label.size();
      labels.push_back(std::move(label));
    }
    auto name = Name::FromLabels(labels);
    ASSERT_TRUE(name.ok());
    ASSERT_EQ(name->label_count(), labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      EXPECT_EQ(name->label(i), labels[i]);
    }

    // Text round trip (escapes: \DDD and \X).
    auto reparsed = Name::Parse(name->ToString());
    ASSERT_TRUE(reparsed.ok()) << name->ToString();
    EXPECT_EQ(*reparsed, *name);
    EXPECT_EQ(reparsed->Hash(), name->Hash());

    // Wire round trip.
    util::ByteWriter w;
    name->EncodeWire(w);
    util::ByteReader r(w.span());
    auto decoded = Name::DecodeWire(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, *name);

    // Copy and move across the small-buffer boundary.
    Name copy = *name;
    EXPECT_EQ(copy, *name);
    Name moved = std::move(copy);
    EXPECT_EQ(moved, *name);
    EXPECT_EQ(moved.Hash(), name->Hash());
  }
}

// Case variants agree on equality, ordering, and hash; different names
// disagree on equality.
TEST(NameHotPath, CaseVariantsAgreeEverywhere) {
  util::Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    std::string text;
    const std::size_t nlabels = 1 + rng.Below(4);
    for (std::size_t l = 0; l < nlabels; ++l) {
      if (l > 0) text.push_back('.');
      const std::size_t len = 1 + rng.Below(12);
      for (std::size_t i = 0; i < len; ++i) {
        text.push_back("abcdefghijklmnopqrstuvwxyz0123456789-"[rng.Below(37)]);
      }
    }
    std::string upper = text;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    const Name a = N(text);
    const Name b = N(upper);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.Hash(), b.Hash());
    EXPECT_EQ(a <=> b, std::weak_ordering::equivalent);
    EXPECT_EQ(a.CanonicalWire(), b.CanonicalWire());

    const Name other = N("x" + text);
    EXPECT_NE(a, other);
  }
}

TEST(NameHotPath, LabelAndWireLimits) {
  const std::string label63(63, 'a');
  EXPECT_TRUE(Name::Parse(label63 + ".com").ok());
  EXPECT_FALSE(Name::Parse(std::string(64, 'a') + ".com").ok());

  // Four 63-byte labels need 4*64 = 256 wire bytes incl. the root octet:
  // one over the RFC 1035 limit of 255.
  const std::string too_long =
      label63 + "." + label63 + "." + label63 + "." + label63;
  EXPECT_FALSE(Name::Parse(too_long).ok());
  // 61+63+63+63 labels = 255 wire bytes (62+64+64+64+root): at the limit.
  const std::string at_limit =
      std::string(61, 'a') + "." + label63 + "." + label63 + "." + label63;
  auto name = Name::Parse(at_limit);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->wire_length(), 255u);
  EXPECT_EQ(*Name::Parse(name->ToString()), *name);
}

TEST(NameHotPath, InlineHeapBoundaryBehavesIdentically) {
  // Names straddling kInlineCapacity flat bytes (inline vs heap storage).
  for (std::size_t len : {Name::kInlineCapacity - 2, Name::kInlineCapacity - 1,
                          Name::kInlineCapacity, Name::kInlineCapacity + 1,
                          Name::kInlineCapacity + 2}) {
    const std::string label(len - 1, 'x');  // flat size = 1 + label bytes
    auto name = Name::Parse(label);
    ASSERT_TRUE(name.ok());
    ASSERT_EQ(name->flat().size(), len);
    Name copy = *name;
    Name moved_to;
    moved_to = std::move(copy);
    EXPECT_EQ(moved_to, *name);
    EXPECT_EQ(moved_to.ToString(), name->ToString());
    EXPECT_EQ(moved_to.tld_view(), name->tld_view());
  }
}

TEST(NameHotPath, SuffixAndTldViewsMatchSlowPath) {
  const Name name = N("a.b.c.example.ORG");
  EXPECT_EQ(name.tld_view(), "ORG");
  EXPECT_EQ(name.tld(), "org");  // tld() lowercases, the view does not
  EXPECT_EQ(name.Suffix(1), N("org"));
  EXPECT_EQ(name.Suffix(2), N("example.org"));
  EXPECT_EQ(name.Suffix(0), Name());
  EXPECT_EQ(name.Parent(), N("b.c.example.org"));
  EXPECT_TRUE(name.IsSubdomainOf(N("EXAMPLE.org")));
  EXPECT_FALSE(N("example.org").IsSubdomainOf(name));
}

// ----------------------------------------------------------------- cache

RRset MakeA(std::string_view owner, std::uint32_t ttl, std::uint32_t addr) {
  RRset s;
  s.name = N(owner);
  s.type = RRType::kA;
  s.ttl = ttl;
  s.rdatas.push_back(dns::AData{dns::Ipv4{addr}});
  return s;
}

TEST(CacheHotPath, ExactEvictionOrder) {
  resolver::DnsCache cache(4);
  const sim::SimTime t = 0;
  for (const char* o : {"a.test", "b.test", "c.test", "d.test"}) {
    cache.Put(MakeA(o, 3600, 1), t);
  }
  // Touch a: LRU order (old->new) becomes b, c, d, a.
  EXPECT_NE(cache.Get(MakeA("a.test", 0, 0).key(), t), nullptr);
  cache.Put(MakeA("e.test", 3600, 1), t);  // evicts b
  EXPECT_FALSE(cache.Contains(MakeA("b.test", 0, 0).key(), t));
  EXPECT_TRUE(cache.Contains(MakeA("c.test", 0, 0).key(), t));
  cache.Put(MakeA("f.test", 3600, 1), t);  // evicts c
  EXPECT_FALSE(cache.Contains(MakeA("c.test", 0, 0).key(), t));
  for (const char* o : {"d.test", "a.test", "e.test", "f.test"}) {
    EXPECT_TRUE(cache.Contains(MakeA(o, 0, 0).key(), t)) << o;
  }
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(CacheHotPath, ExpiredEntriesLoseToLiveOnesViaSweep) {
  resolver::DnsCache cache(100);
  // Two entries that expire at t=10s, then a stream of live Puts. The lazy
  // sweep must reclaim the dead ones without evicting anything live.
  cache.Put(MakeA("dead1.test", 10, 1), 0);
  cache.Put(MakeA("dead2.test", 10, 1), 0);
  const sim::SimTime later = 20 * sim::kSecond;
  for (int i = 0; i < 50; ++i) {
    cache.Put(MakeA("live" + std::to_string(i) + ".test", 3600, 1), later);
  }
  EXPECT_EQ(cache.stats().swept, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(
        cache.Contains(MakeA("live" + std::to_string(i) + ".test", 0, 0).key(),
                       later));
  }
}

TEST(CacheHotPath, ExpiryBeatsRecency) {
  resolver::DnsCache cache(10);
  cache.Put(MakeA("gone.test", 1, 1), 0);
  // Keep it most-recently-used right up to expiry.
  EXPECT_NE(cache.Get(MakeA("gone.test", 0, 0).key(), sim::kSecond - 1),
            nullptr);
  // Recency does not save an expired entry.
  EXPECT_EQ(cache.Get(MakeA("gone.test", 0, 0).key(), 2 * sim::kSecond),
            nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_FALSE(cache.Contains(MakeA("gone.test", 0, 0).key(), 0));
}

TEST(CacheHotPath, TldCountTracksEviction) {
  resolver::DnsCache cache(3);
  cache.Put(MakeA("com", 3600, 1), 0);
  cache.Put(MakeA("org", 3600, 1), 0);
  cache.Put(MakeA("www.example.com", 3600, 1), 0);
  EXPECT_EQ(cache.TldRRsetCount(), 2u);
  cache.Put(MakeA("net", 3600, 1), 0);  // evicts "com" (LRU)
  EXPECT_EQ(cache.TldRRsetCount(), 2u);
  EXPECT_FALSE(cache.Contains(MakeA("com", 0, 0).key(), 0));
}

// Model-based stress: the intrusive-LRU cache against a textbook
// list+map implementation, including keys that collide in the hash table
// (single-letter owners across two RR types keep bucket chains busy).
TEST(CacheHotPath, MatchesReferenceModelUnderStress) {
  constexpr std::size_t kCapacity = 32;
  resolver::DnsCache cache(kCapacity);

  struct Model {
    std::list<dns::RRsetKey> lru;  // front = most recent
    std::unordered_map<dns::RRsetKey, std::list<dns::RRsetKey>::iterator,
                       dns::RRsetKeyHash>
        pos;
    void Touch(const dns::RRsetKey& key) {
      lru.splice(lru.begin(), lru, pos[key]);
    }
    void Put(const dns::RRsetKey& key) {
      if (auto it = pos.find(key); it != pos.end()) {
        Touch(key);
        return;
      }
      lru.push_front(key);
      pos[key] = lru.begin();
      if (pos.size() > kCapacity) {
        pos.erase(lru.back());
        lru.pop_back();
      }
    }
  } model;

  util::Rng rng(99);
  std::vector<RRset> pool;
  for (char c = 'a'; c <= 'z'; ++c) {
    pool.push_back(MakeA(std::string(1, c) + ".test", 3600, 1));
    RRset ns;
    ns.name = N(std::string(1, c) + ".test");
    ns.type = RRType::kNS;
    ns.ttl = 3600;
    ns.rdatas.push_back(dns::NsData{N("ns." + std::string(1, c) + ".test")});
    pool.push_back(ns);
  }
  for (int step = 0; step < 20000; ++step) {
    const RRset& r = pool[rng.Below(pool.size())];
    if (rng.Below(2) == 0) {
      cache.Put(r, 0);
      model.Put(r.key());
    } else {
      const bool hit = cache.Get(r.key(), 0) != nullptr;
      const bool model_hit = model.pos.count(r.key()) > 0;
      ASSERT_EQ(hit, model_hit) << "step " << step;
      if (model_hit) model.Touch(r.key());
    }
  }
  ASSERT_EQ(cache.size(), model.pos.size());
  for (const auto& key : model.lru) {
    EXPECT_TRUE(cache.Contains(key, 0));
  }
}

// ----------------------------------------------------------------- EventFn

TEST(EventFn, InvokesInlineAndHeapCallables) {
  int hits = 0;
  sim::EventFn small([&hits]() { ++hits; });
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture (> kInlineSize) exercises the heap path.
  std::array<std::uint64_t, 16> big{};
  big[15] = 7;
  int got = 0;
  sim::EventFn large([big, &got]() { got = static_cast<int>(big[15]); });
  large();
  EXPECT_EQ(got, 7);
}

TEST(EventFn, DestroysCaptureOnceAndOnlyOnce) {
  auto token = std::make_shared<int>(42);
  EXPECT_EQ(token.use_count(), 1);
  {
    sim::EventFn fn([token]() {});
    EXPECT_EQ(token.use_count(), 2);
    sim::EventFn moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_TRUE(static_cast<bool>(moved));
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventFn, MoveAssignReleasesPreviousCapture) {
  auto first = std::make_shared<int>(1);
  auto second = std::make_shared<int>(2);
  sim::EventFn fn([first]() {});
  fn = sim::EventFn([second]() {});
  EXPECT_EQ(first.use_count(), 1);  // old capture destroyed on assignment
  EXPECT_EQ(second.use_count(), 2);
}

// ------------------------------------------------------------ event queues

// Regression for the determinism guarantee (and the old const_cast-move-from
// priority_queue::top()): a large batch of same-timestamp events must fire in
// exact scheduling order under both queue policies.
TEST(SimQueues, FifoTiebreakAtScale) {
  for (sim::QueuePolicy policy :
       {sim::QueuePolicy::kBinaryHeap, sim::QueuePolicy::kCalendar}) {
    sim::Simulator sim(policy);
    std::vector<int> order;
    order.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      sim.Schedule(500, [&order, i]() { order.push_back(i); });
    }
    sim.Run();
    ASSERT_EQ(order.size(), 10000u);
    for (int i = 0; i < 10000; ++i) {
      ASSERT_EQ(order[i], i) << "policy " << static_cast<int>(policy);
    }
  }
}

// Differential: the heap policy, the calendar policy, and a stable sort of
// the schedule must all agree on execution order. Time spread covers the
// calendar's level-0 ring, level-1 ring, overflow list, and rebase path.
TEST(SimQueues, HeapAndCalendarAgreeOnRandomSchedules) {
  auto run = [](sim::QueuePolicy policy, sim::SimTime* end) {
    sim::Simulator sim(policy);
    std::vector<int> order;
    util::Rng rng(4242);
    constexpr int kTop = 600;
    for (int i = 0; i < kTop; ++i) {
      sim::SimTime when = 0;
      switch (rng.Below(5)) {
        case 0:  // dense: within the current ~1 ms bucket
          when = static_cast<sim::SimTime>(rng.Below(1000));
          break;
        case 1:  // level-0 ring
          when = static_cast<sim::SimTime>(rng.Below(4 * sim::kSecond));
          break;
        case 2:  // level-1 ring
          when = static_cast<sim::SimTime>(rng.Below(4 * sim::kHour));
          break;
        case 3:  // overflow + rebase
          when = 5 * sim::kHour +
                 static_cast<sim::SimTime>(rng.Below(10 * sim::kDay));
          break;
        default:  // duplicates: exercise the FIFO tiebreak
          when = 777;
          break;
      }
      // Some events schedule follow-ups relative to their own firing time.
      const bool chain = rng.Below(4) == 0;
      const auto extra = static_cast<sim::SimTime>(rng.Below(2 * sim::kSecond));
      sim.ScheduleAt(when, [&sim, &order, i, chain, extra]() {
        order.push_back(i);
        if (chain) {
          sim.Schedule(extra, [&order, i]() { order.push_back(10000 + i); });
        }
      });
    }
    sim.Run();
    *end = sim.now();
    return order;
  };
  sim::SimTime heap_end = 0;
  sim::SimTime cal_end = 0;
  const std::vector<int> heap_order =
      run(sim::QueuePolicy::kBinaryHeap, &heap_end);
  const std::vector<int> cal_order = run(sim::QueuePolicy::kCalendar, &cal_end);
  ASSERT_EQ(heap_order.size(), cal_order.size());
  EXPECT_EQ(heap_order, cal_order);
  EXPECT_EQ(heap_end, cal_end);
}

// RunUntil across calendar bucket boundaries: the clock parks exactly at the
// deadline and pending events stay queued, even when they live hours or days
// ahead (level-1 and overflow territory).
TEST(SimQueues, CalendarRunUntilAcrossLevels) {
  sim::Simulator sim(sim::QueuePolicy::kCalendar);
  std::vector<int> fired;
  sim.ScheduleAt(2 * sim::kSecond, [&]() { fired.push_back(1); });
  sim.ScheduleAt(1 * sim::kHour, [&]() { fired.push_back(2); });
  sim.ScheduleAt(3 * sim::kDay, [&]() { fired.push_back(3); });

  sim.RunUntil(sim::kSecond);
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(sim.now(), sim::kSecond);
  EXPECT_EQ(sim.pending_events(), 3u);

  sim.RunUntil(2 * sim::kHour);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));

  // Scheduling "behind" the peeked cursor but at/after now() still works.
  sim.Schedule(0, [&]() { fired.push_back(4); });
  sim.RunUntil(4 * sim::kDay);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimQueues, CalendarNegativeDelayStillThrows) {
  sim::Simulator sim(sim::QueuePolicy::kCalendar);
  EXPECT_THROW(sim.Schedule(-1, []() {}), std::logic_error);
}

}  // namespace
}  // namespace rootless
