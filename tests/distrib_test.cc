// Tests for the distribution mechanisms: snapshot format, the real rsync
// algorithm, cost models, swarm simulation, and the fetch service.
#include <gtest/gtest.h>

#include "distrib/fetch_service.h"
#include "distrib/mechanisms.h"
#include "distrib/rsync.h"
#include "util/rng.h"
#include "zone/evolution.h"
#include "zone/snapshot.h"

namespace rootless::distrib {
namespace {

util::Bytes RandomBytes(util::Rng& rng, std::size_t n) {
  util::Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Below(256));
  return out;
}

// ---------------------------------------------------------------- snapshot

TEST(Snapshot, ZoneRoundTrip) {
  const zone::RootZoneModel model;
  const zone::Zone original = model.Snapshot({2019, 4, 1});
  const auto wire = zone::SerializeZone(original);
  auto decoded = zone::DeserializeZone(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_TRUE(*decoded == original);
}

TEST(Snapshot, RejectsCorruption) {
  const zone::RootZoneModel model;
  auto wire = zone::SerializeZone(model.Snapshot({2019, 4, 1}));
  EXPECT_FALSE(zone::DeserializeZone(util::Bytes{9, 9, 9, 9}).ok());
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(zone::DeserializeZone(wire).ok());
}

// ------------------------------------------------------------------ rsync

TEST(Rsync, RollingChecksumRolls) {
  util::Rng rng(1);
  const util::Bytes data = RandomBytes(rng, 300);
  const std::size_t window = 64;
  RollingChecksum rolling;
  rolling.Init(std::span(data).subspan(0, window));
  for (std::size_t i = 0; i + window < data.size(); ++i) {
    rolling.Roll(data[i], data[i + window], window);
    EXPECT_EQ(rolling.value(), RollingChecksum::Compute(
                                   std::span(data).subspan(i + 1, window)))
        << i;
  }
}

TEST(Rsync, IdenticalFilesProduceCopyOnlyDelta) {
  util::Rng rng(2);
  const util::Bytes file = RandomBytes(rng, 10000);
  const auto sig = ComputeSignature(file, 1024);
  const Delta delta = ComputeDelta(sig, file);
  EXPECT_EQ(delta.literal_bytes(), 0u);
  auto rebuilt = ApplyDelta(file, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, file);
  // A copy-only delta is tiny compared to the file.
  EXPECT_LT(delta.WireSize(), 100u);
}

TEST(Rsync, SmallEditProducesSmallDelta) {
  util::Rng rng(3);
  util::Bytes old_file = RandomBytes(rng, 200000);
  util::Bytes new_file = old_file;
  // A 100-byte splice in the middle (insertion shifts everything after).
  const util::Bytes insert = RandomBytes(rng, 100);
  new_file.insert(new_file.begin() + 100000, insert.begin(), insert.end());

  const auto sig = ComputeSignature(old_file, 2048);
  const Delta delta = ComputeDelta(sig, new_file);
  auto rebuilt = ApplyDelta(old_file, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, new_file);
  // The delta must be a small fraction of the file: literals are the splice
  // plus at most one block of misalignment.
  EXPECT_LT(delta.literal_bytes(), 4096u);
  EXPECT_LT(delta.WireSize(), new_file.size() / 10);
}

TEST(Rsync, CompletelyDifferentFilesFallBackToLiterals) {
  util::Rng rng(4);
  const util::Bytes old_file = RandomBytes(rng, 50000);
  const util::Bytes new_file = RandomBytes(rng, 50000);
  const auto sig = ComputeSignature(old_file, 2048);
  const Delta delta = ComputeDelta(sig, new_file);
  auto rebuilt = ApplyDelta(old_file, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, new_file);
  EXPECT_GT(delta.literal_bytes(), 49000u);
}

TEST(Rsync, ShortTailHandled) {
  util::Rng rng(5);
  // File sizes not divisible by the block size.
  const util::Bytes old_file = RandomBytes(rng, 10240 + 137);
  util::Bytes new_file = old_file;
  new_file[5000] ^= 0xFF;
  const auto sig = ComputeSignature(old_file, 1024);
  const Delta delta = ComputeDelta(sig, new_file);
  auto rebuilt = ApplyDelta(old_file, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, new_file);
}

TEST(Rsync, EmptyFiles) {
  const util::Bytes empty;
  const auto sig = ComputeSignature(empty, 1024);
  EXPECT_TRUE(sig.blocks.empty());
  util::Rng rng(6);
  const util::Bytes new_file = RandomBytes(rng, 500);
  const Delta delta = ComputeDelta(sig, new_file);
  auto rebuilt = ApplyDelta(empty, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, new_file);
}

TEST(Rsync, DeltaSerializationRoundTrip) {
  util::Rng rng(7);
  const util::Bytes old_file = RandomBytes(rng, 30000);
  util::Bytes new_file = old_file;
  new_file.resize(29000);
  new_file[100] ^= 1;
  const auto sig = ComputeSignature(old_file, 2048);
  const Delta delta = ComputeDelta(sig, new_file);
  const auto wire = SerializeDelta(delta);
  auto decoded = DeserializeDelta(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  auto rebuilt = ApplyDelta(old_file, *decoded);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, new_file);
  EXPECT_FALSE(DeserializeDelta(util::Bytes{1, 2, 3}).ok());
}

TEST(Rsync, ApplyRejectsWrongBase) {
  util::Rng rng(8);
  const util::Bytes old_file = RandomBytes(rng, 10000);
  const auto sig = ComputeSignature(old_file, 1024);
  const Delta delta = ComputeDelta(sig, old_file);
  const util::Bytes other = RandomBytes(rng, 9999);
  EXPECT_FALSE(ApplyDelta(other, delta).ok());
}

// Property: random mutations of a zone file always reconstruct exactly.
TEST(RsyncProperty, RandomZoneMutationsReconstruct) {
  util::Rng rng(9);
  const zone::RootZoneModel model;
  const auto base = zone::SerializeZone(model.Snapshot({2019, 4, 1}));
  for (int trial = 0; trial < 20; ++trial) {
    util::Bytes mutated = base;
    const int edits = 1 + static_cast<int>(rng.Below(20));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.Below(mutated.size());
      switch (rng.Below(3)) {
        case 0:
          mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.Below(255));
          break;
        case 1:
          mutated.insert(mutated.begin() + pos,
                         static_cast<std::uint8_t>(rng.Below(256)));
          break;
        default:
          mutated.erase(mutated.begin() + pos);
      }
    }
    const auto sig = ComputeSignature(base, 2048);
    const Delta delta = ComputeDelta(sig, mutated);
    auto rebuilt = ApplyDelta(base, delta);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(*rebuilt, mutated) << trial;
  }
}

TEST(Rsync, DailyZoneDeltaIsTinyVersusFullFile) {
  // The §5.2 claim in miniature: consecutive daily snapshots differ little,
  // so the rsync delta is a small fraction of the full file.
  const zone::RootZoneModel model;
  const auto day1 = zone::SerializeZone(model.Snapshot({2019, 4, 1}));
  const auto day2 = zone::SerializeZone(model.Snapshot({2019, 4, 2}));
  const auto sig = ComputeSignature(day1, 2048);
  const Delta delta = ComputeDelta(sig, day2);
  auto rebuilt = ApplyDelta(day1, delta);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(*rebuilt, day2);
  EXPECT_LT(delta.WireSize() + sig.WireSize(), day2.size() / 4);
}

// ------------------------------------------------------------- mechanisms

TEST(Mechanisms, FullFileCostScalesWithPopulation) {
  const auto cost = FullFileCost(1'100'000, 2.0, 1000, 10);
  EXPECT_DOUBLE_EQ(cost.per_resolver_bytes_per_day, 550'000.0);
  EXPECT_DOUBLE_EQ(cost.total_bytes_per_day, 550'000.0 * 1000);
  EXPECT_DOUBLE_EQ(cost.origin_bytes_per_day, 550'000.0 * 100);
}

TEST(Mechanisms, RsyncBeatsFullFileForSmallDeltas) {
  const auto full = FullFileCost(1'100'000, 2.0, 1000, 1);
  const auto rsync = RsyncCost(13'000, 20'000, 2.0, 1000);
  EXPECT_LT(rsync.total_bytes_per_day, full.total_bytes_per_day / 10);
}

TEST(Mechanisms, LongerTtlReducesLoad) {
  const auto two_days = FullFileCost(1'100'000, 2.0, 1000, 1);
  const auto week = FullFileCost(1'100'000, 7.0, 1000, 1);
  EXPECT_LT(week.total_bytes_per_day, two_days.total_bytes_per_day);
}

TEST(Swarm, AllPeersComplete) {
  SwarmConfig config;
  config.file_bytes = 1'100'000;
  config.peer_count = 200;
  const SwarmResult result = SimulateSwarm(config);
  EXPECT_GT(result.rounds, 0u);
  // Every chunk each peer holds was transferred exactly once to it.
  const std::uint64_t chunk_count = (config.file_bytes + config.chunk_bytes - 1) /
                                    config.chunk_bytes;
  EXPECT_EQ(result.origin_chunks + result.peer_chunks,
            chunk_count * config.peer_count);
}

TEST(Swarm, OriginServesSmallFraction) {
  SwarmConfig config;
  config.file_bytes = 1'100'000;
  config.peer_count = 500;
  const SwarmResult result = SimulateSwarm(config);
  const double origin_fraction =
      static_cast<double>(result.origin_chunks) /
      static_cast<double>(result.origin_chunks + result.peer_chunks);
  // The swarm carries most of the load — the paper's point about P2P.
  EXPECT_LT(origin_fraction, 0.25);

  const auto cost = P2pCost(result, config.file_bytes, 2.0, 500);
  EXPECT_LT(cost.origin_bytes_per_day, cost.total_bytes_per_day * 0.25);
}

TEST(Swarm, ZeroByteFile) {
  SwarmConfig config;
  config.file_bytes = 0;
  config.peer_count = 10;
  const SwarmResult result = SimulateSwarm(config);
  EXPECT_EQ(result.rounds, 0u);
}

// ----------------------------------------------------------- fetch service

TEST(FetchService, DeliversZoneAfterTransferTime) {
  sim::Simulator sim;
  const zone::RootZoneModel model;
  auto zone_ptr = zone::ZoneSnapshot::Build(model.Snapshot({2019, 4, 1}));
  FetchServiceConfig config;
  ZoneFetchService service(sim, {config, [&]() { return zone_ptr; }});

  bool delivered = false;
  service.Fetch([&](ZoneFetchService::FetchResult result) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)->Serial(), zone_ptr->Serial());
    delivered = true;
  });
  sim.Run();
  EXPECT_TRUE(delivered);
  // Transfer took base latency + size/bandwidth > 50 ms.
  EXPECT_GT(sim.now(), 50 * sim::kMillisecond);
  EXPECT_EQ(service.stats().fetches, 1u);
  EXPECT_GT(service.stats().bytes_served, 0u);
}

TEST(FetchService, OutageWindowFails) {
  sim::Simulator sim;
  auto zone_ptr = zone::ZoneSnapshot::Build(zone::Zone());
  ZoneFetchService service(sim, {{}, [&]() { return zone_ptr; }});
  service.AddOutage(0, sim::kHour);

  bool failed = false;
  service.Fetch([&](ZoneFetchService::FetchResult result) {
    failed = !result.ok();
  });
  sim.Run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(service.stats().failures, 1u);

  // After the outage, fetches succeed.
  sim::Simulator sim2;
  ZoneFetchService service2(sim2, {{}, [&]() { return zone_ptr; }});
  service2.AddOutage(sim::kHour, 2 * sim::kHour);
  bool ok = false;
  service2.Fetch(
      [&](ZoneFetchService::FetchResult result) { ok = result.ok(); });
  sim2.Run();
  EXPECT_TRUE(ok);
}

TEST(FetchService, ValidatesSignedZone) {
  sim::Simulator sim;
  util::Rng rng(31);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  crypto::KeyStore store;
  store.AddKey(zsk);

  // Sign a small zone.
  const zone::RootZoneModel model(
      [] {
        zone::EvolutionConfig config;
        config.legacy_tld_count = 20;
        config.peak_tld_count = 30;
        return config;
      }());
  const zone::Zone plain = model.Snapshot({2019, 4, 1});
  auto signed_zone = std::make_shared<zone::Zone>(plain.apex());
  for (const auto& rrset :
       crypto::SignZoneRRsets(plain.AllRRsets(), zsk, dns::Name(), 0, 1000)) {
    ASSERT_TRUE(signed_zone->AddRRset(rrset).ok());
  }

  FetchServiceConfig config;
  config.verify_signatures = true;
  config.validation_now = 500;
  ZoneFetchService service(
      sim,
      {config, [&]() { return zone::ZoneSnapshot::Build(*signed_zone); }});
  service.SetTrust(zsk.dnskey, store);

  bool ok = false;
  service.Fetch(
      [&](ZoneFetchService::FetchResult result) { ok = result.ok(); });
  sim.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(service.stats().validation_failures, 0u);

  // A tampered (unsigned extra RRset) zone fails validation.
  ASSERT_TRUE(signed_zone
                  ->AddRecord({*dns::Name::Parse("evil."), dns::RRType::kNS,
                               dns::RRClass::kIN, 60,
                               dns::NsData{*dns::Name::Parse("ns.evil.")}})
                  .ok());
  bool second_ok = true;
  service.Fetch([&](ZoneFetchService::FetchResult result) {
    second_ok = result.ok();
  });
  sim.Run();
  EXPECT_FALSE(second_ok);
  EXPECT_EQ(service.stats().validation_failures, 1u);
}

}  // namespace
}  // namespace rootless::distrib
