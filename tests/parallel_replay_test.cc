// Sharded parallel replay: partitioner properties, workload invariance
// across shard counts, streamed-classifier parity with ClassifyTrace, and
// bit-identical merged output across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "sim/parallel.h"
#include "traffic/classify.h"
#include "traffic/replay.h"
#include "traffic/shard.h"

namespace rootless::traffic {
namespace {

std::vector<std::string> TestTlds() {
  std::vector<std::string> tlds;
  for (int i = 0; i < 120; ++i) tlds.push_back("tld" + std::to_string(i));
  tlds.push_back("llc");  // the §5.3 new TLD, delegated on the DITL day
  return tlds;
}

WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.seed = 4242;
  config.scale = 0.00005;  // ~285K queries, ~205 resolvers
  return config;
}

void ExpectTalliesEqual(const ShardTally& a, const ShardTally& b) {
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.bogus_tld_queries, b.bogus_tld_queries);
  EXPECT_EQ(a.cache_spurious_ideal, b.cache_spurious_ideal);
  EXPECT_EQ(a.valid_ideal, b.valid_ideal);
  EXPECT_EQ(a.cache_spurious_budget, b.cache_spurious_budget);
  EXPECT_EQ(a.valid_budget, b.valid_budget);
  EXPECT_EQ(a.new_tld_queries, b.new_tld_queries);
  EXPECT_EQ(a.resolvers_total, b.resolvers_total);
  EXPECT_EQ(a.resolvers_bogus_only, b.resolvers_bogus_only);
}

// ------------------------------------------------------------ partitioner

TEST(ShardPlan, PartitionCoversPopulationExactlyOnce) {
  for (const std::uint32_t n : {1u, 10u, 97u, 4096u, 4097u}) {
    for (const int k : {1, 2, 3, 7, 8, 16}) {
      WorkloadConfig config;
      config.scale = 1.0;
      config.full_scale_resolvers = n;
      const ShardPlan plan = MakeShardPlan(config, k);
      // MakeShardPlan floors the population at 10 resolvers.
      const std::uint32_t count = std::max(n, 10u);
      ASSERT_EQ(plan.resolver_count, count);
      ASSERT_EQ(plan.shards.size(), static_cast<std::size_t>(k));

      // Contiguous cover of [0, count), balanced to within one resolver.
      std::uint32_t expected_begin = 0;
      std::uint32_t min_size = count, max_size = 0;
      for (const ShardRange& range : plan.shards) {
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_LE(range.begin, range.end);
        expected_begin = range.end;
        min_size = std::min(min_size, range.size());
        max_size = std::max(max_size, range.size());
      }
      EXPECT_EQ(expected_begin, count);
      EXPECT_LE(max_size - min_size, 1u);

      // ShardOf agrees with the plan's ranges for every resolver.
      for (std::uint32_t r = 0; r < count; ++r) {
        const int s = ShardOf(count, k, r);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, k);
        const ShardRange& range = plan.shards[static_cast<std::size_t>(s)];
        EXPECT_GE(r, range.begin);
        EXPECT_LT(r, range.end);
      }
    }
  }
}

TEST(ShardPlan, MoreShardsThanResolversLeavesEmptyShards) {
  WorkloadConfig config;
  config.scale = 1.0;
  config.full_scale_resolvers = 3;  // floored to 10 by MakeShardPlan
  const ShardPlan plan = MakeShardPlan(config, 16);
  ASSERT_EQ(plan.resolver_count, 10u);
  std::uint32_t covered = 0;
  int empty = 0;
  for (const ShardRange& range : plan.shards) {
    covered += range.size();
    empty += range.size() == 0;
  }
  EXPECT_EQ(covered, 10u);
  EXPECT_EQ(empty, 6);
}

// --------------------------------------------- workload invariance over K

// Drains every chunk of every shard; returns packed (time, resolver, tld)
// events plus the summed tally. TLD ids are comparable across shards and
// shard counts because every generator builds the identical label table.
struct GeneratedDay {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, TldId>> events;
  ShardTally tally;
};

GeneratedDay GenerateWholeDay(const WorkloadConfig& config, int num_shards,
                              const std::vector<std::string>& tlds) {
  GeneratedDay day;
  const ShardPlan plan = MakeShardPlan(config, num_shards);
  for (int s = 0; s < num_shards; ++s) {
    ShardTraceGenerator gen(config, plan, s, tlds);
    ShardChunk chunk;
    while (gen.NextChunk(chunk)) {
      for (const QueryEvent& e : chunk.events) {
        day.events.emplace_back(e.time_sec, e.resolver_id, e.tld);
      }
    }
    day.tally.MergeFrom(gen.tally());
  }
  std::sort(day.events.begin(), day.events.end());
  return day;
}

TEST(ShardGenerator, WorkloadInvariantAcrossShardCounts) {
  const WorkloadConfig config = SmallConfig();
  const std::vector<std::string> tlds = TestTlds();
  const GeneratedDay one = GenerateWholeDay(config, 1, tlds);
  ASSERT_GT(one.events.size(), 100000u);
  for (const int k : {2, 3, 8}) {
    const GeneratedDay split = GenerateWholeDay(config, k, tlds);
    // Not just equal counts: the exact same multiset of queries.
    EXPECT_TRUE(one.events == split.events) << "K=" << k;
    ExpectTalliesEqual(one.tally, split.tally);
  }
}

TEST(ShardGenerator, StreamedClassifierMatchesClassifyTrace) {
  const WorkloadConfig config = SmallConfig();
  const std::vector<std::string> labels = TestTlds();
  const std::unordered_set<std::string> real(labels.begin(), labels.end());

  // Concatenate the shards' chunks back into a whole-day Trace.
  const int kShards = 3;
  const ShardPlan plan = MakeShardPlan(config, kShards);
  Trace trace;
  ShardTally tally;
  for (int s = 0; s < kShards; ++s) {
    ShardTraceGenerator gen(config, plan, s, labels);
    ShardChunk chunk;
    while (gen.NextChunk(chunk)) {
      for (const QueryEvent& e : chunk.events) {
        trace.events.push_back(
            {e.time_sec, e.resolver_id,
             trace.tlds.Intern(gen.tlds().LabelOf(e.tld))});
      }
    }
    tally.MergeFrom(gen.tally());
  }
  std::sort(trace.events.begin(), trace.events.end(),
            [](const QueryEvent& a, const QueryEvent& b) {
              return a.time_sec < b.time_sec;
            });

  const TrafficMixReport reference = ClassifyTrace(
      trace, [&](const std::string& label) { return real.count(label) > 0; });
  const TrafficMixReport streamed = tally.ToReport();
  EXPECT_EQ(streamed.total_queries, reference.total_queries);
  EXPECT_EQ(streamed.bogus_tld_queries, reference.bogus_tld_queries);
  EXPECT_EQ(streamed.cache_spurious_ideal, reference.cache_spurious_ideal);
  EXPECT_EQ(streamed.valid_ideal, reference.valid_ideal);
  EXPECT_EQ(streamed.cache_spurious_budget, reference.cache_spurious_budget);
  EXPECT_EQ(streamed.valid_budget, reference.valid_budget);
  EXPECT_EQ(streamed.resolvers_total, reference.resolvers_total);
  EXPECT_EQ(streamed.resolvers_bogus_only, reference.resolvers_bogus_only);
}

// ------------------------------------------------- registry merge semantics

TEST(RegistryMerge, CountersGaugesAndHistogramsAccumulate) {
  obs::Registry a, b, target;
  a.counter("m.count").Inc(3);
  a.gauge("m.gauge").Set(7);
  a.histogram("m.hist").Record(10);
  a.histogram("m.hist").Record(1000);
  b.counter("m.count").Inc(4);
  b.gauge("m.gauge").Set(5);
  b.histogram("m.hist").Record(1);

  a.MergeInto(target);
  b.MergeInto(target);

  EXPECT_EQ(target.counter("m.count").value(), 7u);
  EXPECT_EQ(target.gauge("m.gauge").value(), 12);
  const obs::HistogramData& h = target.histogram("m.hist").data();
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1011u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 1000u);
}

TEST(RegistryMerge, ShardOrderMergeIsReproducible) {
  // Two merge passes over the same shard registries (in the same shard-index
  // order) must render byte-identical tables — the property RunShardedReplay
  // relies on for thread-count-independent dumps.
  auto build_shard = [](int shard) {
    auto reg = std::make_unique<obs::Registry>();
    reg->set_instance_namespace("s" + std::to_string(shard) + ".");
    const obs::Labels labels{.instance = reg->NextInstance("test")};
    reg->counter("test.events", labels).Inc(100 + shard);
    reg->histogram("test.latency", labels).Record(shard + 1);
    return reg;
  };
  std::vector<std::unique_ptr<obs::Registry>> shards;
  for (int s = 0; s < 4; ++s) shards.push_back(build_shard(s));

  obs::Registry first, second;
  for (const auto& reg : shards) reg->MergeInto(first);
  for (const auto& reg : shards) reg->MergeInto(second);
  EXPECT_EQ(obs::RenderMetricsTable(first, /*aggregate_instances=*/false),
            obs::RenderMetricsTable(second, /*aggregate_instances=*/false));
  // Instance labels keep their shard namespace through the merge.
  bool saw_s3 = false;
  for (const obs::Sample& sample : first.Snapshot()) {
    if (sample.labels.instance.rfind("s3.", 0) == 0) saw_s3 = true;
  }
  EXPECT_TRUE(saw_s3);
}

TEST(HistogramData, MergeFromIsBucketwiseAdd) {
  obs::HistogramData a, b;
  for (std::uint64_t v : {1u, 2u, 3u, 500u}) a.Record(v);
  for (std::uint64_t v : {4u, 1000000u}) b.Record(v);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 6u);
  EXPECT_EQ(a.sum, 1000510u);
  EXPECT_EQ(a.min, 1u);
  EXPECT_EQ(a.max, 1000000u);
  EXPECT_GE(a.Percentile(100), 1000000u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : a.buckets) bucket_total += bucket;
  EXPECT_EQ(bucket_total, 6u);
}

// ----------------------------------------------- end-to-end replay engine

std::string Fingerprint(const ReplayOutcome& outcome) {
  std::ostringstream out;
  const ShardTally& t = outcome.tally;
  out << t.total_queries << '|' << t.bogus_tld_queries << '|'
      << t.cache_spurious_ideal << '|' << t.valid_ideal << '|'
      << t.cache_spurious_budget << '|' << t.valid_budget << '|'
      << t.new_tld_queries << '|' << t.resolvers_total << '|'
      << t.resolvers_bogus_only << '\n';
  const resolver::ResolverStats& r = outcome.resolver;
  out << r.resolutions << '|' << r.answered_from_cache << '|'
      << r.root_transactions << '|' << r.local_root_lookups << '|'
      << r.tld_transactions << '|' << r.nxdomain << '|' << r.negative_hits
      << '|' << r.timeouts << '|' << r.failures << '|' << r.retries << '\n';
  out << outcome.replayed << '|' << outcome.cache_hits << '|'
      << outcome.cache_lookups << '\n';
  out << obs::RenderMetricsTable(*outcome.metrics,
                                 /*aggregate_instances=*/false);
  return out.str();
}

TEST(ParallelReplay, MergedOutputBitIdenticalAcrossThreadCounts) {
  ReplayOptions options;
  options.workload = SmallConfig();
  options.num_shards = 4;

  options.num_threads = 1;
  const ReplayOutcome serial = RunShardedReplay(options);
  ASSERT_GT(serial.tally.total_queries, 0u);
  // Every generated query was driven through the resolver stack.
  EXPECT_EQ(serial.replayed, serial.tally.total_queries);
  EXPECT_EQ(serial.resolver.resolutions, serial.tally.total_queries);
  EXPECT_EQ(serial.threads, 1);
  EXPECT_EQ(serial.shards, 4);

  const std::string reference = Fingerprint(serial);
  for (const int threads : {2, 4, 8}) {
    ReplayOptions parallel_options = options;
    parallel_options.num_threads = threads;
    const ReplayOutcome parallel = RunShardedReplay(parallel_options);
    EXPECT_EQ(Fingerprint(parallel), reference) << threads << " threads";
  }
}

TEST(ParallelReplay, TopologyPlacementKeepsThreadInvariance) {
  // With the geo model enabled, each shard's resolver is placed at the
  // population-weighted site of its first owned resolver id — a pure
  // function of (topology seed, shard range) — so the merged outcome must
  // stay bit-identical across thread counts, exactly like the legacy
  // fixed-Paris path.
  ReplayOptions options;
  options.workload = SmallConfig();
  options.num_shards = 4;
  options.num_threads = 1;
  options.topology = topo::TopologyOptions{};
  const ReplayOutcome serial = RunShardedReplay(options);
  ASSERT_GT(serial.tally.total_queries, 0u);
  const std::string reference = Fingerprint(serial);
  for (const int threads : {2, 8}) {
    ReplayOptions parallel_options = options;
    parallel_options.num_threads = threads;
    EXPECT_EQ(Fingerprint(RunShardedReplay(parallel_options)), reference)
        << threads << " threads";
  }
  // Generation-side classification is independent of where resolvers sit.
  ReplayOptions legacy = options;
  legacy.topology.reset();
  const ReplayOutcome paris = RunShardedReplay(legacy);
  ExpectTalliesEqual(serial.tally, paris.tally);
}

TEST(ParallelReplay, ClassificationTallyInvariantAcrossShardCounts) {
  // Resolver-side stats legitimately change with K (K caches), but the
  // generated workload and its §2.2 classification must not.
  ReplayOptions options;
  options.workload = SmallConfig();
  options.num_shards = 1;
  options.num_threads = 1;
  const ReplayOutcome one = RunShardedReplay(options);
  options.num_shards = 4;
  const ReplayOutcome four = RunShardedReplay(options);
  ExpectTalliesEqual(one.tally, four.tally);
  EXPECT_EQ(four.replayed, four.tally.total_queries);
}

TEST(ParallelReplay, RunShardsExecutesEveryShardOnce) {
  std::vector<int> hits(17, 0);
  sim::RunShards(17, 4, [&](int shard) { ++hits[shard]; });
  for (int shard = 0; shard < 17; ++shard) EXPECT_EQ(hits[shard], 1);
  // Worker exceptions surface to the caller instead of being swallowed.
  EXPECT_THROW(
      sim::RunShards(4, 2,
                     [](int shard) {
                       if (shard == 3) throw std::runtime_error("boom");
                     }),
      std::runtime_error);
}

}  // namespace
}  // namespace rootless::traffic
