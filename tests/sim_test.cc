// Tests for the discrete-event engine and the simulated network.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"

namespace rootless::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&]() { order.push_back(3); });
  sim.Schedule(10, [&]() { order.push_back(1); });
  sim.Schedule(20, [&]() { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimesFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.Schedule(10, [&]() {
    times.push_back(sim.now());
    sim.Schedule(5, [&]() { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&]() { ++fired; });
  sim.Schedule(100, [&]() { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ScheduleAtAbsolute) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.Schedule(10, [&]() {
    sim.ScheduleAt(25, [&]() { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 25);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.Schedule(-1, []() {}), std::logic_error);
}

TEST(Network, DeliversAfterLatency) {
  Simulator sim;
  Network net(sim, 1);
  net.set_latency_fn([](NodeId, NodeId) { return SimTime{500}; });

  SimTime delivered_at = -1;
  util::Bytes received;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([&](const Datagram& d) {
    delivered_at = sim.now();
    received = d.payload;
  });
  net.Send(a, b, {1, 2, 3});
  sim.Run();
  EXPECT_EQ(delivered_at, 500);
  EXPECT_EQ(received, (util::Bytes{1, 2, 3}));
  EXPECT_EQ(net.datagrams_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 3u);
}

TEST(Network, SourceAndDestinationAreReported) {
  Simulator sim;
  Network net(sim, 1);
  NodeId got_src = 999;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b =
      net.AddNode([&](const Datagram& d) { got_src = d.src; });
  net.Send(a, b, {0});
  sim.Run();
  EXPECT_EQ(got_src, a);
}

TEST(Network, LossDropsDatagrams) {
  Simulator sim;
  Network net(sim, 42);
  net.set_loss_rate(0.5);
  int delivered = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) net.Send(a, b, {0});
  sim.Run();
  EXPECT_GT(delivered, 400);
  EXPECT_LT(delivered, 600);
  EXPECT_EQ(net.datagrams_dropped(), 1000u - delivered);
}

TEST(Network, ZeroLossDeliversAll) {
  Simulator sim;
  Network net(sim, 42);
  int delivered = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 100; ++i) net.Send(a, b, {0});
  sim.Run();
  EXPECT_EQ(delivered, 100);
}

TEST(Network, SetHandlerRewires) {
  Simulator sim;
  Network net(sim, 1);
  int first = 0, second = 0;
  const NodeId a = net.AddNode(nullptr);
  const NodeId b = net.AddNode([&](const Datagram&) { ++first; });
  net.SetHandler(b, [&](const Datagram&) { ++second; });
  net.Send(a, b, {0});
  sim.Run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

}  // namespace
}  // namespace rootless::sim
