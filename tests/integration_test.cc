// End-to-end integration: the paper's whole pipeline in one test —
// evolution model -> signed zone -> distribution (fetch service / rsync) ->
// refresh daemon -> recursive resolver answering clients from its local
// copy, across simulated days with zone updates.
#include <gtest/gtest.h>

#include <memory>

#include "distrib/axfr.h"
#include "distrib/fetch_service.h"
#include "distrib/rsync.h"
#include "resolver/recursive.h"
#include "resolver/refresh_daemon.h"
#include "rootsrv/tld_farm.h"
#include "topo/topology.h"
#include "util/civil_time.h"
#include "zone/evolution.h"
#include "zone/sign.h"
#include "zone/snapshot.h"
#include "zone/zone_diff.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// Small-scale model keeps the test fast while exercising every stage.
zone::EvolutionConfig SmallModel() {
  zone::EvolutionConfig config;
  config.seed = 99;
  config.legacy_tld_count = 40;
  config.peak_tld_count = 80;
  config.rotating_tld_count = 2;
  return config;
}

TEST(Integration, SignedZoneDistributedAndServedLocally) {
  const zone::RootZoneModel model(SmallModel());
  util::Rng key_rng(5);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, key_rng);
  crypto::KeyStore trust;
  trust.AddKey(zsk);

  sim::Simulator sim;
  sim::Network net(sim, 8);
  topo::Topology registry;
  net.set_latency_fn(registry.LatencyFn());

  // Publisher side: signs the daily snapshot on demand. Simulation starts at
  // 2019-06-01; sim-time day N = that date + N.
  const util::CivilDate start_date{2019, 6, 1};
  auto publish = [&](const util::CivilDate& date) {
    return zone::ZoneSnapshot::Build(
        zone::SignZone(model.Snapshot(date), zsk, {0, 2'000'000'000}));
  };

  distrib::FetchServiceConfig fetch_config;
  fetch_config.verify_signatures = true;
  fetch_config.validation_now = 1'000'000'000;
  distrib::ZoneFetchService service(
      sim, {fetch_config, [&]() {
              const auto date = util::AddDays(
                  start_date, sim.now() / sim::kDay);
              return publish(date);
            }});
  service.SetTrust(zsk.dnskey, trust);

  // Resolver side.
  auto initial = publish(start_date);
  rootsrv::TldFarm farm(net, registry, *initial, 4);

  resolver::ResolverConfig config;
  config.mode = resolver::RootMode::kOnDemandZoneFile;
  config.seed = 1;
  resolver::RecursiveResolver resolver(
      sim, net, {config, topo::GeoPoint{48.85, 2.35}, nullptr, &registry});
  resolver.SetTldFarm(&farm);

  resolver::RefreshDaemon daemon(
      sim,
      {resolver::RefreshConfig{},
       {{"fetch",
         [&](std::function<void(resolver::RefreshDaemon::FetchResult)> done) {
           service.Fetch(std::move(done));
         }}},
       [&](zone::SnapshotPtr z) {
         resolver.SetLocalZone(z);
         farm.RefreshAddresses(*z);
       }});
  daemon.Start(initial);

  // Drive lookups across ten simulated days; the daemon refreshes the zone
  // roughly every 42 hours underneath.
  int answered = 0, nxdomain = 0;
  const auto tlds = initial->DelegatedChildren();
  ASSERT_GE(tlds.size(), 10u);
  for (int day = 0; day < 10; ++day) {
    sim.RunUntil(static_cast<sim::SimTime>(day) * sim::kDay);
    for (int q = 0; q < 20; ++q) {
      const std::string host = "h" + std::to_string(day * 100 + q) +
                               ".example." +
                               tlds[q % tlds.size()].tld() + ".";
      resolver.Resolve(*Name::Parse(host), RRType::kA,
                       [&](const resolver::ResolutionResult& result) {
                         answered += result.rcode == dns::RCode::kNoError;
                       });
    }
    resolver.Resolve(N("junk.device.local."), RRType::kA,
                     [&](const resolver::ResolutionResult& result) {
                       nxdomain += result.rcode == dns::RCode::kNXDomain;
                     });
    // The refresh daemon keeps the event queue perpetually non-empty, so
    // advance a bounded window rather than draining the queue.
    sim.RunUntil(static_cast<sim::SimTime>(day) * sim::kDay + sim::kHour);
  }

  EXPECT_EQ(answered, 200);
  EXPECT_EQ(nxdomain, 10);
  EXPECT_GE(daemon.stats().refreshes, 4u);  // ~every 42h over 10 days
  EXPECT_EQ(daemon.stats().expirations, 0u);
  EXPECT_EQ(service.stats().validation_failures, 0u);
  // The resolver never needed a root server: it has no fleet at all.
  EXPECT_GT(resolver.stats().local_root_lookups, 0u);
}

TEST(Integration, RsyncPipelineTracksDailySnapshots) {
  const zone::RootZoneModel model(SmallModel());
  // A resolver keeps its serialized snapshot in sync via rsync deltas for a
  // month and must match the publisher bit-for-bit every day.
  util::Bytes local = zone::SerializeZone(model.Snapshot({2019, 4, 1}));
  std::size_t total_delta_bytes = 0;
  for (int day = 1; day <= 30; ++day) {
    const auto remote = zone::SerializeZone(
        model.Snapshot(util::AddDays({2019, 4, 1}, day)));
    const auto sig = distrib::ComputeSignature(local, 1024);
    const auto delta = distrib::ComputeDelta(sig, remote);
    total_delta_bytes += delta.WireSize() + sig.WireSize();
    auto rebuilt = distrib::ApplyDelta(local, delta);
    ASSERT_TRUE(rebuilt.ok()) << day;
    ASSERT_EQ(*rebuilt, remote) << day;
    local = std::move(*rebuilt);
  }
  // A month of deltas must cost far less than a month of full files.
  EXPECT_LT(total_delta_bytes, 30u * local.size() / 4);
}

TEST(Integration, DiffChannelKeepsZoneCurrent) {
  // The §5.3 "recent additions diff" channel: apply daily structural diffs
  // instead of full snapshots and stay identical to the publisher.
  const zone::RootZoneModel model(SmallModel());
  zone::Zone local = model.Snapshot({2018, 2, 20});
  for (int day = 1; day <= 10; ++day) {
    const zone::Zone remote =
        model.Snapshot(util::AddDays({2018, 2, 20}, day));
    const zone::ZoneDiff diff = DiffZones(local, remote);
    const auto wire = zone::SerializeDiff(diff);
    auto decoded = zone::DeserializeDiff(wire);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(ApplyDiff(local, *decoded).ok()) << day;
    ASSERT_TRUE(local == remote) << day;
  }
  // The channel picked up ".llc" (added 2018-02-23) along the way.
  EXPECT_NE(local.Find(N("llc."), RRType::kNS), nullptr);
}

}  // namespace
}  // namespace rootless

namespace rootless {
namespace {

TEST(Integration, RefreshDaemonOverAxfrTransport) {
  // The refresh daemon's out-of-band fetch realized by the actual AXFR
  // protocol over a lossy simulated network.
  const zone::RootZoneModel model(SmallModel());
  sim::Simulator sim;
  sim::Network net(sim, 44);
  topo::Topology registry;
  net.set_latency_fn(registry.LatencyFn());
  net.set_loss_rate(0.05);

  const util::CivilDate start_date{2019, 6, 1};
  auto current = zone::ZoneSnapshot::Build(model.Snapshot(start_date));
  distrib::AxfrServer server(net, [&]() { return current; });
  distrib::AxfrClient client(sim, net, {});
  registry.PlaceNode(server.node(), {40, -74});
  registry.PlaceNode(client.node(), {48, 2});

  std::uint32_t applied_serial = 0;
  resolver::RefreshDaemon daemon(
      sim,
      {resolver::RefreshConfig{},
       {{"axfr",
         [&](std::function<void(resolver::RefreshDaemon::FetchResult)> done) {
           client.Fetch(server.node(), applied_serial,
                        [done = std::move(done), &current](
                            util::Result<zone::SnapshotPtr> result) {
                          if (!result.ok()) {
                            done(result.error());
                          } else if (*result == nullptr) {
                            done(current);  // up to date: keep serving
                          } else {
                            done(std::move(*result));
                          }
                        });
         }}},
       [&](zone::SnapshotPtr z) { applied_serial = z->Serial(); }});
  daemon.Start(current);
  EXPECT_EQ(applied_serial, current->Serial());

  // Publisher moves forward each simulated day.
  for (int day = 1; day <= 6; ++day) {
    sim.RunUntil(static_cast<sim::SimTime>(day) * sim::kDay);
    current = zone::ZoneSnapshot::Build(
        model.Snapshot(util::AddDays(start_date, day)));
  }
  sim.RunUntil(7 * sim::kDay);

  EXPECT_GE(daemon.stats().refreshes, 2u);
  EXPECT_EQ(daemon.stats().expirations, 0u);
  // The resolver's copy tracked the publisher through real transfers.
  EXPECT_GT(applied_serial, zone::RootZoneModel::SerialFor(start_date));
  EXPECT_GT(client.stats().transfers, 0u);
}

}  // namespace
}  // namespace rootless
