// Tests for rdata presentation/wire forms and the message codec.
#include <gtest/gtest.h>

#include "dns/message.h"
#include "dns/rdata.h"
#include "dns/rr.h"
#include "util/rng.h"
#include "util/strings.h"

namespace rootless::dns {
namespace {

Name N(std::string_view s) { return *Name::Parse(s); }

// ------------------------------------------------------------- addresses

TEST(Ipv4, ParseAndFormat) {
  auto a = Ipv4::Parse("198.41.0.4");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "198.41.0.4");
  EXPECT_EQ(a->addr, 0xC6290004u);
  EXPECT_FALSE(Ipv4::Parse("1.2.3").ok());
  EXPECT_FALSE(Ipv4::Parse("1.2.3.256").ok());
  EXPECT_FALSE(Ipv4::Parse("a.b.c.d").ok());
}

TEST(Ipv6, ParseAndFormat) {
  auto a = Ipv6::Parse("2001:503:ba3e::2:30");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "2001:503:ba3e::2:30");
  auto loopback = Ipv6::Parse("::1");
  ASSERT_TRUE(loopback.ok());
  EXPECT_EQ(loopback->ToString(), "::1");
  auto zero = Ipv6::Parse("::");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->ToString(), "::");
  auto full = Ipv6::Parse("2001:db8:1:2:3:4:5:6");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->ToString(), "2001:db8:1:2:3:4:5:6");
  EXPECT_FALSE(Ipv6::Parse("1::2::3").ok());
  EXPECT_FALSE(Ipv6::Parse("1:2:3").ok());
  EXPECT_FALSE(Ipv6::Parse("12345::").ok());
}

// ----------------------------------------------------------------- types

TEST(Types, RoundTrip) {
  EXPECT_EQ(RRTypeToString(RRType::kNS), "NS");
  EXPECT_EQ(*RRTypeFromString("aaaa"), RRType::kAAAA);
  EXPECT_EQ(RRTypeToString(static_cast<RRType>(999)), "TYPE999");
  EXPECT_EQ(*RRTypeFromString("TYPE999"), static_cast<RRType>(999));
  EXPECT_FALSE(RRTypeFromString("NOPE").ok());
  EXPECT_EQ(*RRClassFromString("in"), RRClass::kIN);
  EXPECT_EQ(RCodeToString(RCode::kNXDomain), "NXDOMAIN");
}

// ----------------------------------------------------------------- rdata

template <typename T>
void ExpectRdataRoundTrip(RRType type, const T& data) {
  const Rdata rdata(data);
  util::ByteWriter w;
  EncodeRdata(rdata, w);
  util::ByteReader r(w.span());
  auto decoded = DecodeRdata(type, w.size(), r);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_TRUE(rdata == *decoded);

  // Presentation round trip.
  const std::string text = RdataToString(rdata);
  std::vector<std::string_view> fields;
  for (auto f : util::SplitWhitespace(text)) fields.push_back(f);
  // TXT strings carry quotes that the zone parser strips; skip reparse.
  if (type != RRType::kTXT) {
    auto reparsed = RdataFromFields(type, fields);
    ASSERT_TRUE(reparsed.ok()) << text << ": " << reparsed.error().message();
    EXPECT_TRUE(rdata == *reparsed) << text;
  }
}

TEST(Rdata, RoundTrips) {
  ExpectRdataRoundTrip(RRType::kA, AData{*Ipv4::Parse("192.0.2.1")});
  ExpectRdataRoundTrip(RRType::kAAAA, AaaaData{*Ipv6::Parse("2001:db8::1")});
  ExpectRdataRoundTrip(RRType::kNS, NsData{N("a.root-servers.net")});
  ExpectRdataRoundTrip(RRType::kCNAME, CnameData{N("target.example.")});
  ExpectRdataRoundTrip(RRType::kSOA,
                       SoaData{N("a.root-servers.net"), N("nstld.verisign-grs.com"),
                               2019041100, 1800, 900, 604800, 86400});
  ExpectRdataRoundTrip(RRType::kMX, MxData{10, N("mail.example.com")});
  ExpectRdataRoundTrip(RRType::kTXT, TxtData{{"hello world", "second"}});
  ExpectRdataRoundTrip(RRType::kDS,
                       DsData{20326, 8, 2, util::Bytes{0xDE, 0xAD, 0xBE, 0xEF}});
  ExpectRdataRoundTrip(RRType::kDNSKEY,
                       DnskeyData{257, 3, 8, util::Bytes{1, 2, 3, 4, 5}});
  ExpectRdataRoundTrip(
      RRType::kRRSIG,
      RrsigData{RRType::kNS, 8, 1, 172800, 1555555555, 1554555555, 20326,
                Name(), util::Bytes{9, 9, 9}});
  ExpectRdataRoundTrip(RRType::kNSEC,
                       NsecData{N("aaa."), {RRType::kNS, RRType::kDS,
                                            RRType::kRRSIG}});
}

TEST(Rdata, RawRoundTrip) {
  const RawData raw{util::Bytes{0xCA, 0xFE}};
  util::ByteWriter w;
  EncodeRdata(Rdata(raw), w);
  util::ByteReader r(w.span());
  auto decoded = DecodeRdata(static_cast<RRType>(4242), 2, r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(Rdata(raw) == *decoded);
  EXPECT_EQ(RdataToString(*decoded), "\\# 2 cafe");
  auto reparsed = RdataFromFields(static_cast<RRType>(4242),
                                  {"\\#", "2", "cafe"});
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(Rdata(raw) == *reparsed);
}

TEST(Rdata, DecodeRejectsTruncatedAndTrailing) {
  util::Bytes wire = {1, 2, 3};  // 3 bytes, A needs 4
  util::ByteReader r(wire);
  EXPECT_FALSE(DecodeRdata(RRType::kA, 3, r).ok());

  util::Bytes wire5 = {1, 2, 3, 4, 5};
  util::ByteReader r5(wire5);
  EXPECT_FALSE(DecodeRdata(RRType::kA, 5, r5).ok());
}

TEST(Rdata, RelativeNamesUseOrigin) {
  auto origin = N("com.");
  auto rdata = RdataFromFields(RRType::kNS, {"ns1.nic"}, origin);
  ASSERT_TRUE(rdata.ok());
  EXPECT_TRUE(std::get<NsData>(*rdata).nameserver == N("ns1.nic.com."));
  auto absolute = RdataFromFields(RRType::kNS, {"ns1.nic."}, origin);
  ASSERT_TRUE(absolute.ok());
  EXPECT_TRUE(std::get<NsData>(*absolute).nameserver == N("ns1.nic."));
}

TEST(Rdata, NsecTypeBitmapWindows) {
  // Type 4242 lives in window 16; exercises multi-window bitmaps.
  NsecData nsec{N("next."), {RRType::kA, static_cast<RRType>(4242)}};
  ExpectRdataRoundTrip(RRType::kNSEC, nsec);
}

// ----------------------------------------------------------------- rrset

TEST(RRset, GroupIntoRRsets) {
  std::vector<ResourceRecord> records;
  records.push_back({N("com."), RRType::kNS, RRClass::kIN, 172800,
                     NsData{N("a.gtld-servers.net.")}});
  records.push_back({N("com."), RRType::kNS, RRClass::kIN, 172000,
                     NsData{N("b.gtld-servers.net.")}});
  records.push_back({N("org."), RRType::kNS, RRClass::kIN, 172800,
                     NsData{N("a0.org.afilias-nst.info.")}});
  // duplicate rdata dropped
  records.push_back({N("com."), RRType::kNS, RRClass::kIN, 172800,
                     NsData{N("a.gtld-servers.net.")}});

  const auto sets = GroupIntoRRsets(records);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size(), 2u);
  EXPECT_EQ(sets[0].ttl, 172000u);  // min TTL
  EXPECT_EQ(sets[1].size(), 1u);

  const auto expanded = sets[0].ToRecords();
  EXPECT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].ttl, 172000u);
}

// --------------------------------------------------------------- message

Message SampleReferral() {
  Message m;
  m.header.id = 4242;
  m.header.qr = true;
  m.header.aa = false;
  m.questions.push_back({N("www.sigcomm.org."), RRType::kA, RRClass::kIN});
  m.authority.push_back({N("org."), RRType::kNS, RRClass::kIN, 172800,
                         NsData{N("a0.org.afilias-nst.info.")}});
  m.authority.push_back({N("org."), RRType::kNS, RRClass::kIN, 172800,
                         NsData{N("b0.org.afilias-nst.org.")}});
  m.additional.push_back({N("a0.org.afilias-nst.info."), RRType::kA,
                          RRClass::kIN, 172800,
                          AData{*Ipv4::Parse("199.19.56.1")}});
  return m;
}

TEST(Message, RoundTrip) {
  const Message m = SampleReferral();
  const auto wire = EncodeMessage(m);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(*decoded, m);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message m;
  m.header.id = 7;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = false;
  m.header.rd = true;
  m.header.ra = true;
  m.header.opcode = Opcode::kNotify;
  m.header.rcode = RCode::kNXDomain;
  const auto wire = EncodeMessage(m);
  auto decoded = DecodeMessage(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header, m.header);
}

TEST(Message, CompressionShrinksRepeatedNames) {
  const Message m = SampleReferral();
  const auto wire = EncodeMessage(m);
  // Uncompressed lower bound: each "org." repetition costs 5 bytes; with
  // compression the second occurrence is a 2-byte pointer. Just assert the
  // encoded form is smaller than the naive sum of parts.
  std::size_t naive = 12;
  for (const auto& q : m.questions) naive += q.name.wire_length() + 4;
  auto record_size = [](const ResourceRecord& rr) {
    util::ByteWriter w;
    EncodeRdata(rr.rdata, w);
    return rr.name.wire_length() + 10 + w.size();
  };
  for (const auto& rr : m.authority) naive += record_size(rr);
  for (const auto& rr : m.additional) naive += record_size(rr);
  EXPECT_LT(wire.size(), naive);
}

TEST(Message, TruncationDropsRecordsAndSetsTc) {
  Message m = SampleReferral();
  const auto full = EncodeMessage(m);
  const auto truncated = EncodeMessage(m, full.size() - 1);
  ASSERT_LT(truncated.size(), full.size());
  auto decoded = DecodeMessage(truncated);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->header.tc);
  EXPECT_LT(decoded->record_count(), m.record_count());
}

TEST(Message, DecodeRejectsGarbage) {
  util::Bytes junk = {1, 2, 3};
  EXPECT_FALSE(DecodeMessage(junk).ok());

  // Trailing bytes after a valid message.
  auto wire = EncodeMessage(SampleReferral());
  wire.push_back(0);
  EXPECT_FALSE(DecodeMessage(wire).ok());
}

TEST(Message, MakeQueryAndResponse) {
  const Message q = MakeQuery(99, N("example.com."), RRType::kA, true);
  EXPECT_FALSE(q.header.qr);
  EXPECT_TRUE(q.header.rd);
  ASSERT_EQ(q.questions.size(), 1u);

  const Message r = MakeResponse(q, RCode::kNoError);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, 99);
  EXPECT_EQ(r.questions, q.questions);
}

// Property test: random well-formed messages round-trip.
TEST(MessageProperty, RandomRoundTrips) {
  util::Rng rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng.Below(65536));
    m.header.qr = rng.Chance(0.5);
    m.header.rd = rng.Chance(0.5);
    m.header.rcode = rng.Chance(0.2) ? RCode::kNXDomain : RCode::kNoError;

    auto random_name = [&rng]() {
      std::vector<std::string> labels;
      const std::size_t count = 1 + rng.Below(4);
      static const char* kPool[] = {"com", "net", "example", "www", "ns1",
                                    "nic", "a", "xn--abc", "long-label-here"};
      for (std::size_t i = 0; i < count; ++i) {
        labels.push_back(kPool[rng.Below(std::size(kPool))]);
      }
      return *Name::FromLabels(labels);
    };

    m.questions.push_back({random_name(), RRType::kA, RRClass::kIN});
    const std::size_t answers = rng.Below(4);
    for (std::size_t i = 0; i < answers; ++i) {
      switch (rng.Below(3)) {
        case 0:
          m.answers.push_back(
              {random_name(), RRType::kA, RRClass::kIN,
               static_cast<std::uint32_t>(rng.Below(172800)),
               AData{Ipv4{static_cast<std::uint32_t>(rng.Next())}}});
          break;
        case 1:
          m.answers.push_back({random_name(), RRType::kNS, RRClass::kIN, 3600,
                               NsData{random_name()}});
          break;
        default:
          m.answers.push_back({random_name(), RRType::kTXT, RRClass::kIN, 60,
                               TxtData{{"payload"}}});
      }
    }
    const auto wire = EncodeMessage(m);
    auto decoded = DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message();
    EXPECT_EQ(*decoded, m);
  }
}

}  // namespace
}  // namespace rootless::dns
