// Tests for the resolver stack: cache, root selection, zone DB, the
// recursive engine in all four root modes, and the refresh daemon.
#include <gtest/gtest.h>

#include <memory>

#include "resolver/cache.h"
#include "resolver/recursive.h"
#include "resolver/refresh_daemon.h"
#include "resolver/root_selector.h"
#include "resolver/zone_db.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "topo/deployment.h"
#include "zone/evolution.h"

namespace rootless::resolver {
namespace {

using dns::Name;
using dns::RRClass;
using dns::RRset;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

RRset MakeNsSet(std::string_view owner, std::string_view target,
                std::uint32_t ttl = 172800) {
  RRset s;
  s.name = N(owner);
  s.type = RRType::kNS;
  s.ttl = ttl;
  s.rdatas.push_back(dns::NsData{N(target)});
  return s;
}

// ------------------------------------------------------------------ cache

TEST(Cache, HitAndMiss) {
  DnsCache cache;
  cache.Put(MakeNsSet("com.", "a.gtld-servers.net."), 0);
  EXPECT_NE(cache.Get({N("com."), RRType::kNS, RRClass::kIN}, 1), nullptr);
  EXPECT_EQ(cache.Get({N("org."), RRType::kNS, RRClass::kIN}, 1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, TtlExpiry) {
  DnsCache cache;
  cache.Put(MakeNsSet("com.", "ns.", 10), 0);  // expires at t=10s
  EXPECT_NE(cache.Get({N("com."), RRType::kNS, RRClass::kIN},
                      9 * sim::kSecond),
            nullptr);
  EXPECT_EQ(cache.Get({N("com."), RRType::kNS, RRClass::kIN},
                      10 * sim::kSecond),
            nullptr);
  EXPECT_EQ(cache.stats().expired, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entry erased
}

TEST(Cache, LruEvictionUnderCapacity) {
  DnsCache cache(2);
  cache.Put(MakeNsSet("a.", "ns."), 0);
  cache.Put(MakeNsSet("b.", "ns."), 0);
  // Touch a. so b. becomes LRU.
  EXPECT_NE(cache.Get({N("a."), RRType::kNS, RRClass::kIN}, 1), nullptr);
  cache.Put(MakeNsSet("c.", "ns."), 0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Get({N("a."), RRType::kNS, RRClass::kIN}, 1), nullptr);
  EXPECT_EQ(cache.Get({N("b."), RRType::kNS, RRClass::kIN}, 1), nullptr);
  EXPECT_NE(cache.Get({N("c."), RRType::kNS, RRClass::kIN}, 1), nullptr);
}

TEST(Cache, ReplaceRefreshes) {
  DnsCache cache;
  cache.Put(MakeNsSet("com.", "ns1.", 10), 0);
  cache.Put(MakeNsSet("com.", "ns2.", 100), 5 * sim::kSecond);
  const RRset* got =
      cache.Get({N("com."), RRType::kNS, RRClass::kIN}, 50 * sim::kSecond);
  ASSERT_NE(got, nullptr);
  EXPECT_TRUE(std::get<dns::NsData>(got->rdatas[0]).nameserver == N("ns2."));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, PurgeExpired) {
  DnsCache cache;
  cache.Put(MakeNsSet("a.", "ns.", 10), 0);
  cache.Put(MakeNsSet("b.", "ns.", 1000), 0);
  EXPECT_EQ(cache.PurgeExpired(500 * sim::kSecond), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(Cache, TldRRsetCount) {
  DnsCache cache;
  cache.Put(MakeNsSet("com.", "ns."), 0);
  cache.Put(MakeNsSet("org.", "ns."), 0);
  cache.Put(MakeNsSet("example.com.", "ns."), 0);
  EXPECT_EQ(cache.TldRRsetCount(), 2u);
}

// --------------------------------------------------------------- selector

TEST(RootSelector, ProbesAllLettersFirst) {
  RootSelector selector(1);
  std::set<char> seen;
  for (int i = 0; i < 13; ++i) {
    const char letter = selector.PickLetter();
    seen.insert(letter);
    selector.ReportRtt(letter, (letter - 'a' + 1) * sim::kMillisecond);
  }
  EXPECT_EQ(seen.size(), 13u);
}

TEST(RootSelector, ConvergesToFastestLetter) {
  RootSelector selector(1, /*explore=*/0.0);
  for (int i = 0; i < 13; ++i) {
    const char letter = selector.PickLetter();
    selector.ReportRtt(letter, (letter - 'a' + 1) * sim::kMillisecond);
  }
  // 'a' has the lowest RTT.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(selector.PickLetter(), 'a');
}

TEST(RootSelector, TimeoutTriggersFailover) {
  RootSelector selector(1, 0.0);
  for (int i = 0; i < 13; ++i) {
    const char letter = selector.PickLetter();
    selector.ReportRtt(letter, (letter - 'a' + 1) * sim::kMillisecond);
  }
  selector.ReportTimeout('a');
  EXPECT_EQ(selector.PickLetter(), 'b');
  EXPECT_NE(selector.PickRetryLetter('b'), 'b');
}

TEST(RootSelector, EwmaSmoothing) {
  RootSelector selector(1);
  selector.ReportRtt('a', 100);
  selector.ReportRtt('a', 200);
  EXPECT_EQ(selector.srtt('a'), 125);  // (100*3 + 200) / 4
}

// ---------------------------------------------------------------- zone db

TEST(ZoneDb, IndexesDelegations) {
  const zone::RootZoneModel model;
  const zone::Zone snapshot = model.Snapshot({2018, 4, 11});
  ZoneDb db(snapshot);
  EXPECT_EQ(db.tld_count(), snapshot.DelegatedChildren().size());
  EXPECT_EQ(db.serial(), snapshot.Serial());

  const TldEntry* com = db.Lookup("com");
  ASSERT_NE(com, nullptr);
  EXPECT_EQ(com->ns.type, RRType::kNS);
  EXPECT_FALSE(com->ns.rdatas.empty());
  EXPECT_FALSE(com->glue.empty());

  EXPECT_EQ(db.Lookup("definitely-bogus"), nullptr);
  // Case-insensitive.
  EXPECT_NE(db.Lookup("COM"), nullptr);
}

TEST(ZoneDb, LookupAcceptsTldViewWithoutCopy) {
  const zone::RootZoneModel model;
  ZoneDb db(model.Snapshot({2018, 4, 11}));
  // A view straight out of Name::tld_view() — no temporary std::string, and
  // case-insensitive regardless of the query's spelling.
  const Name upper = N("WWW.EXAMPLE.COM.");
  const TldEntry* entry = db.Lookup(upper.tld_view());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->ns.type, RRType::kNS);
  EXPECT_EQ(db.Lookup(N("www.example.com.").tld_view()), entry);
}

TEST(ZoneDb, ReloadBumpsSerialAndRebindsViews) {
  const zone::RootZoneModel model;
  const auto old_snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 11}));
  const auto new_snapshot =
      zone::ZoneSnapshot::Build(model.Snapshot({2018, 4, 12}));
  ASSERT_GT(new_snapshot->Serial(), old_snapshot->Serial());

  ZoneDb db(old_snapshot);
  EXPECT_EQ(db.serial(), old_snapshot->Serial());
  db.Load(new_snapshot);
  EXPECT_EQ(db.serial(), new_snapshot->Serial());
  EXPECT_EQ(db.snapshot().get(), new_snapshot.get());
  // Entries now borrow from the new snapshot's arena.
  const TldEntry* com = db.Lookup("com");
  ASSERT_NE(com, nullptr);
  const auto backing = new_snapshot->Find(N("com."), RRType::kNS);
  ASSERT_TRUE(backing.has_value());
  EXPECT_EQ(com->ns.rdatas.data(), backing->rdatas.data());
}

TEST(ZoneDb, UnknownTldIsLocalNxDomain) {
  const zone::RootZoneModel model;
  ZoneDb db(model.Snapshot({2018, 4, 11}));
  // The local equivalent of a root NXDOMAIN: nullptr, no fallback.
  EXPECT_EQ(db.Lookup("local"), nullptr);
  EXPECT_EQ(db.Lookup("belkin"), nullptr);
  EXPECT_EQ(db.Lookup(""), nullptr);
  EXPECT_EQ(db.Lookup(N("printer.local.").tld_view()), nullptr);
}

// ------------------------------------------------- end-to-end resolution

struct E2E {
  sim::Simulator sim;
  sim::Network net{sim, 21};
  topo::Topology registry;
  zone::RootZoneModel model;
  std::shared_ptr<zone::Zone> root_zone;
  zone::SnapshotPtr root_snapshot;
  std::unique_ptr<rootsrv::RootServerFleet> fleet;
  std::unique_ptr<rootsrv::TldFarm> farm;
  std::unique_ptr<rootsrv::AuthServer> loopback;

  E2E() {
    net.set_latency_fn(registry.LatencyFn());
    root_zone =
        std::make_shared<zone::Zone>(model.Snapshot({2018, 4, 11}));
    // One immutable snapshot serves the fleet, the TLD farm, the loopback
    // server, and every local-root resolver in the fixture.
    root_snapshot = zone::ZoneSnapshot::Build(*root_zone);
    fleet = std::make_unique<rootsrv::RootServerFleet>(net, registry,
                                                       root_snapshot);
    farm = std::make_unique<rootsrv::TldFarm>(net, registry, *root_snapshot,
                                              5);
  }

  std::unique_ptr<RecursiveResolver> MakeResolver(RootMode mode,
                                                  topo::GeoPoint where = {48.85,
                                                                          2.35}) {
    ResolverConfig config;
    config.mode = mode;
    config.seed = 77;
    auto r = std::make_unique<RecursiveResolver>(
        sim, net,
        RecursiveResolver::Options{config, where, nullptr, &registry});
    r->SetTldFarm(farm.get());
    switch (mode) {
      case RootMode::kRootServers:
        r->SetRootFleet(fleet.get());
        break;
      case RootMode::kCachePreload:
      case RootMode::kOnDemandZoneFile:
        r->SetLocalZone(root_snapshot);
        break;
      case RootMode::kLoopbackAuth:
        loopback = std::make_unique<rootsrv::AuthServer>(net, root_snapshot);
        registry.PlaceNode(loopback->node(), where);
        r->SetLoopbackNode(loopback->node());
        r->SetLocalZone(root_snapshot);  // loopback operators hold a copy
        break;
    }
    return r;
  }

  ResolutionResult ResolveSync(RecursiveResolver& r, std::string_view name,
                               RRType type = RRType::kA) {
    ResolutionResult out;
    bool done = false;
    r.Resolve(N(name), type, [&](const ResolutionResult& result) {
      out = result;
      done = true;
    });
    sim.Run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(Recursive, ClassicModeResolvesViaRootAndTld) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kRootServers);
  const auto result = e2e.ResolveSync(*r, "www.example.com.");
  EXPECT_EQ(result.rcode, dns::RCode::kNoError);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].type, RRType::kA);
  EXPECT_TRUE(result.used_root);
  EXPECT_GE(result.transactions, 2);  // root + TLD
  EXPECT_GT(result.latency, 0);
  EXPECT_EQ(e2e.fleet->TotalStats().referrals, 1u);
}

TEST(Recursive, SecondLookupUsesCachedReferral) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kRootServers);
  (void)e2e.ResolveSync(*r, "www.example.com.");
  const auto second = e2e.ResolveSync(*r, "other.example.com.");
  EXPECT_EQ(second.rcode, dns::RCode::kNoError);
  EXPECT_FALSE(second.used_root);  // TLD referral was cached
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 1u);
}

TEST(Recursive, ExactAnswerCacheHitIsInstant) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kRootServers);
  (void)e2e.ResolveSync(*r, "www.example.com.");
  const auto again = e2e.ResolveSync(*r, "www.example.com.");
  EXPECT_EQ(again.latency, 0);
  EXPECT_EQ(again.transactions, 0);
  EXPECT_EQ(r->stats().answered_from_cache, 1u);
}

TEST(Recursive, BogusTldYieldsNxdomainFromRoot) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kRootServers);
  const auto result = e2e.ResolveSync(*r, "foo.bogus-tld-xyz.");
  EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
  EXPECT_EQ(e2e.fleet->TotalStats().nxdomain, 1u);
}

TEST(Recursive, CachePreloadNeverTouchesRoots) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kCachePreload);
  const auto result = e2e.ResolveSync(*r, "www.example.com.");
  EXPECT_EQ(result.rcode, dns::RCode::kNoError);
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 0u);
  // Preloading put the whole zone in the cache.
  EXPECT_GE(r->cache().size(), e2e.root_zone->rrset_count());
}

TEST(Recursive, OnDemandModeResolvesLocallyWithDbLatency) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kOnDemandZoneFile);
  const auto result = e2e.ResolveSync(*r, "www.example.com.");
  EXPECT_EQ(result.rcode, dns::RCode::kNoError);
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 0u);
  EXPECT_EQ(r->stats().local_root_lookups, 1u);
  // Cache holds only what was needed, not the whole zone.
  EXPECT_LT(r->cache().size(), 100u);
}

TEST(Recursive, LocalModesAnswerBogusTldLocally) {
  E2E e2e;
  auto preload = e2e.MakeResolver(RootMode::kCachePreload);
  const auto result = e2e.ResolveSync(*preload, "foo.bogus-tld-xyz.");
  EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
  EXPECT_EQ(result.latency, 0);  // no network transaction at all
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 0u);
}

TEST(Recursive, LoopbackModeUsesLoopbackServer) {
  E2E e2e;
  auto r = e2e.MakeResolver(RootMode::kLoopbackAuth);
  const auto result = e2e.ResolveSync(*r, "www.example.com.");
  EXPECT_EQ(result.rcode, dns::RCode::kNoError);
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 0u);
  EXPECT_EQ(e2e.loopback->stats().queries, 1u);
  // The root leg cost loopback latency instead of a WAN RTT, so the total
  // must beat the classic mode resolving the same name cold.
  auto classic = e2e.MakeResolver(RootMode::kRootServers);
  const auto classic_result = e2e.ResolveSync(*classic, "www.example.com.");
  EXPECT_LT(result.latency, classic_result.latency);
}

TEST(Recursive, LocalModesBeatClassicOnColdLookups) {
  E2E e2e;
  auto classic = e2e.MakeResolver(RootMode::kRootServers);
  auto preload = e2e.MakeResolver(RootMode::kCachePreload);
  const auto classic_result = e2e.ResolveSync(*classic, "www.example.com.");
  const auto preload_result = e2e.ResolveSync(*preload, "www.example.com.");
  EXPECT_LT(preload_result.latency, classic_result.latency);
}

TEST(Recursive, QnameMinimizationSendsOnlyTldToRoot) {
  E2E e2e;
  ResolverConfig config;
  config.mode = RootMode::kRootServers;
  config.qname_minimization = true;
  config.seed = 3;
  const topo::GeoPoint where{48.85, 2.35};
  RecursiveResolver r(e2e.sim, e2e.net, {config, where});
  e2e.registry.PlaceNode(r.node(), where);
  r.SetTldFarm(e2e.farm.get());
  r.SetRootFleet(e2e.fleet.get());

  bool done = false;
  r.Resolve(N("www.secret-host.example.com."), RRType::kA,
            [&](const ResolutionResult& result) {
              done = true;
              EXPECT_EQ(result.rcode, dns::RCode::kNoError);
            });
  e2e.sim.Run();
  EXPECT_TRUE(done);
  // The root saw an answerable NS query for com. (a referral in our zone
  // semantics), never the full qname.
  EXPECT_EQ(e2e.fleet->TotalStats().queries, 1u);
}

TEST(Recursive, TimeoutRetriesAnotherLetter) {
  E2E e2e;
  e2e.net.set_loss_rate(0.9);  // heavy loss forces retries
  ResolverConfig config;
  config.mode = RootMode::kRootServers;
  config.seed = 5;
  config.max_retries = 10;
  const topo::GeoPoint where{48.85, 2.35};
  RecursiveResolver r(e2e.sim, e2e.net, {config, where});
  e2e.registry.PlaceNode(r.node(), where);
  r.SetTldFarm(e2e.farm.get());
  r.SetRootFleet(e2e.fleet.get());

  bool done = false;
  dns::RCode rcode = dns::RCode::kServFail;
  r.Resolve(N("www.example.com."), RRType::kA,
            [&](const ResolutionResult& result) {
              done = true;
              rcode = result.rcode;
            });
  e2e.sim.Run();
  EXPECT_TRUE(done);
  // With 10 retries at 90% loss the lookup usually succeeds; either way the
  // resolver must have recorded timeouts and never hung.
  EXPECT_GT(r.stats().timeouts, 0u);
}

TEST(Recursive, ExhaustedRetriesFail) {
  E2E e2e;
  e2e.net.set_loss_rate(1.0);  // nothing gets through
  ResolverConfig config;
  config.mode = RootMode::kRootServers;
  config.seed = 5;
  config.max_retries = 2;
  const topo::GeoPoint where{48.85, 2.35};
  RecursiveResolver r(e2e.sim, e2e.net, {config, where});
  e2e.registry.PlaceNode(r.node(), where);
  r.SetTldFarm(e2e.farm.get());
  r.SetRootFleet(e2e.fleet.get());

  ResolutionResult out;
  bool done = false;
  r.Resolve(N("www.example.com."), RRType::kA,
            [&](const ResolutionResult& result) {
              out = result;
              done = true;
            });
  e2e.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.rcode, dns::RCode::kServFail);
  EXPECT_EQ(r.stats().failures, 1u);
}

// ---------------------------------------------------------------- daemon

TEST(RefreshDaemon, RefreshesBeforeExpiry) {
  sim::Simulator sim;
  int fetches = 0, applies = 0;
  RefreshDaemon daemon(
      sim,
      {RefreshConfig{},
       {{"fetch",
         [&](std::function<void(RefreshDaemon::FetchResult)> done) {
           ++fetches;
           sim.Schedule(sim::kMinute, [done = std::move(done)]() {
             done(zone::ZoneSnapshot::Build(zone::Zone()));
           });
         }}},
       [&](zone::SnapshotPtr) { ++applies; }});
  daemon.Start(zone::ZoneSnapshot::Build(zone::Zone()));
  EXPECT_EQ(applies, 1);
  sim.RunUntil(10 * sim::kDay);
  // Every ~42h a refresh: ~5-6 refreshes in 10 days.
  EXPECT_GE(daemon.stats().refreshes, 5u);
  EXPECT_EQ(daemon.stats().expirations, 0u);
  EXPECT_TRUE(daemon.zone_valid());
  EXPECT_EQ(fetches, static_cast<int>(daemon.stats().fetch_attempts));
}

TEST(RefreshDaemon, RetriesDuringOutageWithoutExpiring) {
  sim::Simulator sim;
  // Outage between hour 40 and hour 45 (fetch window opens at hour 42).
  auto in_outage = [&sim]() {
    return sim.now() >= 40 * sim::kHour && sim.now() < 45 * sim::kHour;
  };
  RefreshDaemon daemon(
      sim,
      {RefreshConfig{},
       {{"fetch",
         [&](std::function<void(RefreshDaemon::FetchResult)> done) {
           if (in_outage()) {
             done(util::Error("outage"));
           } else {
             done(zone::ZoneSnapshot::Build(zone::Zone()));
           }
         }}},
       [](zone::SnapshotPtr) {}});
  daemon.Start(zone::ZoneSnapshot::Build(zone::Zone()));
  sim.RunUntil(3 * sim::kDay);
  // The paper's point: with a 6h lead there is room to retry through a
  // short outage with no impact on lookups.
  EXPECT_GT(daemon.stats().fetch_failures, 0u);
  EXPECT_EQ(daemon.stats().expirations, 0u);
  EXPECT_GE(daemon.stats().refreshes, 1u);
}

TEST(RefreshDaemon, LongOutageExpiresZone) {
  sim::Simulator sim;
  // Outage from hour 40 to hour 80: expiry at 48h passes while failing.
  auto in_outage = [&sim]() {
    return sim.now() >= 40 * sim::kHour && sim.now() < 80 * sim::kHour;
  };
  RefreshDaemon daemon(
      sim,
      {RefreshConfig{},
       {{"fetch",
         [&](std::function<void(RefreshDaemon::FetchResult)> done) {
           if (in_outage()) {
             done(util::Error("outage"));
           } else {
             done(zone::ZoneSnapshot::Build(zone::Zone()));
           }
         }}},
       [](zone::SnapshotPtr) {}});
  daemon.Start(zone::ZoneSnapshot::Build(zone::Zone()));
  sim.RunUntil(48 * sim::kHour - 1);
  EXPECT_TRUE(daemon.zone_valid());
  sim.RunUntil(50 * sim::kHour);
  EXPECT_FALSE(daemon.zone_valid());
  sim.RunUntil(5 * sim::kDay);
  EXPECT_EQ(daemon.stats().expirations, 1u);
  EXPECT_TRUE(daemon.zone_valid());  // recovered after the outage
  EXPECT_GT(daemon.stats().stale_time, 0);
}

}  // namespace
}  // namespace rootless::resolver
