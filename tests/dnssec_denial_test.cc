// Tests for authenticated denial: NSEC chain construction, covering checks,
// denial validation, signed-zone production, and the resolver's negative
// cache + manipulation detection (the §4 security story).
#include <gtest/gtest.h>

#include <memory>

#include "crypto/dnssec.h"
#include "resolver/recursive.h"
#include "rootsrv/auth_server.h"
#include "rootsrv/tld_farm.h"
#include "topo/topology.h"
#include "zone/evolution.h"
#include "zone/sign.h"

namespace rootless {
namespace {

using dns::Name;
using dns::NsecData;
using dns::RRset;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

struct SignedEnv {
  util::Rng rng{404};
  crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  crypto::KeyStore store;
  zone::Zone plain;
  zone::Zone signed_zone;

  SignedEnv() {
    store.AddKey(zsk);
    dns::SoaData soa;
    soa.mname = N("a.root-servers.net.");
    soa.minimum = 86400;
    (void)plain.AddRecord(
        {Name(), RRType::kSOA, dns::RRClass::kIN, 86400, soa});
    for (const char* tld : {"com", "net", "org", "dev"}) {
      (void)plain.AddRecord({N(std::string(tld) + "."), RRType::kNS,
                             dns::RRClass::kIN, 172800,
                             dns::NsData{N("ns1.nic." + std::string(tld) + ".")}});
      (void)plain.AddRecord(
          {N("ns1.nic." + std::string(tld) + "."), RRType::kA,
           dns::RRClass::kIN, 172800,
           dns::AData{dns::Ipv4{0xC0000200u + static_cast<std::uint32_t>(
                                                  tld[0])}}});
    }
    signed_zone = zone::SignZone(plain, zsk, {0, 100000});
  }
};

TEST(NsecChain, CoversEveryOwnerOnce) {
  SignedEnv env;
  const auto chain =
      crypto::BuildNsecChain(env.plain.AllRRsets(), Name(), 86400);
  // One NSEC per distinct owner (apex + 4 TLDs + 4 glue hosts).
  EXPECT_EQ(chain.size(), 9u);
  // The chain closes: following `next` from the apex visits every owner and
  // returns to the apex.
  std::size_t hops = 0;
  Name current;  // apex
  do {
    bool found = false;
    for (const auto& s : chain) {
      if (s.name == current) {
        current = std::get<NsecData>(s.rdatas.front()).next;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << current.ToString();
    ++hops;
    ASSERT_LE(hops, chain.size());
  } while (!current.is_root());
  EXPECT_EQ(hops, chain.size());
}

TEST(NsecChain, TypeBitmapsIncludeOwnerTypes) {
  SignedEnv env;
  const auto chain =
      crypto::BuildNsecChain(env.plain.AllRRsets(), Name(), 86400);
  for (const auto& s : chain) {
    const auto& nsec = std::get<NsecData>(s.rdatas.front());
    EXPECT_TRUE(std::find(nsec.types.begin(), nsec.types.end(),
                          RRType::kNSEC) != nsec.types.end());
    if (s.name == N("com.")) {
      EXPECT_TRUE(std::find(nsec.types.begin(), nsec.types.end(),
                            RRType::kNS) != nsec.types.end());
    }
  }
}

TEST(NsecCovers, IntervalSemantics) {
  NsecData nsec;
  nsec.next = N("net.");
  // NSEC at com. covering (com., net.).
  EXPECT_TRUE(crypto::NsecCovers(N("com."), nsec, N("dev."), Name()));
  EXPECT_TRUE(crypto::NsecCovers(N("com."), nsec, N("foo.com."), Name()));
  EXPECT_FALSE(crypto::NsecCovers(N("com."), nsec, N("org."), Name()));
  EXPECT_FALSE(crypto::NsecCovers(N("com."), nsec, N("com."), Name()));

  // Wrap-around NSEC: last owner pointing back to the apex.
  NsecData wrap;
  wrap.next = Name();
  EXPECT_TRUE(crypto::NsecCovers(N("org."), wrap, N("zz."), Name()));
  EXPECT_FALSE(crypto::NsecCovers(N("org."), wrap, N("net."), Name()));
}

TEST(SignedZone, ValidatesCompletely) {
  SignedEnv env;
  auto validated = zone::ValidateSignedZone(env.signed_zone, env.zsk.dnskey,
                                            env.store, 5000);
  ASSERT_TRUE(validated.ok()) << validated.error().message();
  // plain RRsets + DNSKEY + NSEC per owner.
  EXPECT_GT(*validated, env.plain.rrset_count());
  // DNSKEY present at the apex.
  EXPECT_NE(env.signed_zone.Find(Name(), RRType::kDNSKEY), nullptr);
}

TEST(SignedZone, NxdomainCarriesProvableDenial) {
  SignedEnv env;
  const auto result =
      env.signed_zone.Lookup(N("foo.bogus."), RRType::kA, true);
  EXPECT_EQ(result.disposition, zone::LookupDisposition::kNxDomain);

  auto status = crypto::ValidateDenial(N("foo.bogus."), result.authority,
                                       env.zsk.dnskey, env.store, 5000);
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(SignedZone, DenialForNameBeforeFirstOwner) {
  SignedEnv env;
  // "aa." sorts before "com." — needs the wrap-around NSEC.
  const auto result = env.signed_zone.Lookup(N("aa."), RRType::kA, true);
  EXPECT_EQ(result.disposition, zone::LookupDisposition::kNxDomain);
  auto status = crypto::ValidateDenial(N("aa."), result.authority,
                                       env.zsk.dnskey, env.store, 5000);
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(ValidateDenial, RejectsSpoofedNxdomain) {
  SignedEnv env;
  // A bare NXDOMAIN with no NSEC (what an on-path attacker can forge).
  auto status = crypto::ValidateDenial(N("victim.com."), {}, env.zsk.dnskey,
                                       env.store, 5000);
  EXPECT_FALSE(status.ok());

  // An NSEC that does not cover the name.
  RRset nsec_set;
  nsec_set.name = N("org.");
  nsec_set.type = RRType::kNSEC;
  nsec_set.ttl = 60;
  NsecData nsec;
  nsec.next = N("zz.");
  nsec_set.rdatas.push_back(dns::Rdata(nsec));
  auto sig = crypto::SignRRset(nsec_set, env.zsk, Name(), 0, 100000);
  RRset sig_set;
  sig_set.name = nsec_set.name;
  sig_set.type = RRType::kRRSIG;
  sig_set.ttl = 60;
  sig_set.rdatas.push_back(dns::Rdata(sig));
  auto wrong = crypto::ValidateDenial(N("aaa."), {nsec_set, sig_set},
                                      env.zsk.dnskey, env.store, 5000);
  EXPECT_FALSE(wrong.ok());

  // A covering NSEC whose signature was forged (random bytes).
  RRset forged_sig_set = sig_set;
  std::get<dns::RrsigData>(forged_sig_set.rdatas[0]).signature[0] ^= 0xFF;
  auto forged = crypto::ValidateDenial(N("victim.com."),
                                       {nsec_set, forged_sig_set},
                                       env.zsk.dnskey, env.store, 5000);
  EXPECT_FALSE(forged.ok());
}

// ------------------------------------------------------------- resolver

struct AttackEnv {
  sim::Simulator sim;
  sim::Network net{sim, 5};
  topo::Topology registry;
  SignedEnv keys;
  std::shared_ptr<zone::Zone> signed_zone;
  zone::SnapshotPtr signed_snapshot;
  std::unique_ptr<rootsrv::AuthServer> root;
  std::unique_ptr<rootsrv::TldFarm> farm;

  AttackEnv() {
    net.set_latency_fn(registry.LatencyFn());
    signed_zone = std::make_shared<zone::Zone>(keys.signed_zone);
    signed_snapshot = zone::ZoneSnapshot::Build(*signed_zone);
    root = std::make_unique<rootsrv::AuthServer>(net, signed_snapshot,
                                                 /*include_dnssec=*/true);
    registry.PlaceNode(root->node(), {40, -74});
    farm = std::make_unique<rootsrv::TldFarm>(net, registry, *signed_snapshot,
                                              9);
  }

  std::unique_ptr<resolver::RecursiveResolver> MakeResolver(bool validate) {
    resolver::ResolverConfig config;
    config.mode = resolver::RootMode::kLoopbackAuth;  // single root node
    config.validate_denials = validate;
    config.validation_now = 5000;
    config.max_retries = 2;
    auto r = std::make_unique<resolver::RecursiveResolver>(
        sim, net,
        resolver::RecursiveResolver::Options{config, topo::GeoPoint{40, -74}});
    registry.PlaceNode(r->node(), {48, 2});
    r->SetTldFarm(farm.get());
    r->SetLoopbackNode(root->node());
    r->SetLocalZone(signed_snapshot);
    if (validate) r->SetTrustAnchor(keys.zsk.dnskey, keys.store);
    return r;
  }
};

TEST(ResolverNegativeCache, SecondBogusLookupIsLocal) {
  AttackEnv env;
  auto r = env.MakeResolver(false);
  int done = 0;
  r->Resolve(N("printer.belkin."), RRType::kA,
             [&](const resolver::ResolutionResult& result) {
               EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
               ++done;
             });
  env.sim.Run();
  const auto root_queries = env.root->stats().queries;
  r->Resolve(N("scanner.belkin."), RRType::kA,
             [&](const resolver::ResolutionResult& result) {
               EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
               EXPECT_EQ(result.latency, 0);
               ++done;
             });
  env.sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(env.root->stats().queries, root_queries);  // no extra root query
  EXPECT_EQ(r->stats().negative_hits, 1u);
}

TEST(ResolverNegativeCache, ExpiresAfterTtl) {
  AttackEnv env;
  auto r = env.MakeResolver(false);
  r->Resolve(N("a.belkin."), RRType::kA, [](const auto&) {});
  env.sim.Run();
  // Warp past the negative TTL (capped at 1h) and ask again.
  env.sim.RunUntil(env.sim.now() + 2 * sim::kHour);
  const auto before = env.root->stats().queries;
  r->Resolve(N("b.belkin."), RRType::kA, [](const auto&) {});
  env.sim.Run();
  EXPECT_GT(env.root->stats().queries, before);
}

TEST(ResolverValidation, AcceptsGenuineDenial) {
  AttackEnv env;
  auto r = env.MakeResolver(true);
  bool done = false;
  r->Resolve(N("foo.nonexistent-tld."), RRType::kA,
             [&](const resolver::ResolutionResult& result) {
               EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
               done = true;
             });
  env.sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(r->stats().manipulation_detected, 0u);
}

TEST(ResolverValidation, DetectsSpoofedDenial) {
  AttackEnv env;
  // On-path censor: replace any query to the root about victim TLD "com"
  // with a spoofed, unsigned NXDOMAIN.
  const sim::NodeId root_node = env.root->node();
  env.net.set_interceptor([root_node](const sim::Datagram& d)
                              -> sim::InterceptVerdict {
    if (d.dst != root_node) return sim::InterceptVerdict::Pass();
    auto query = dns::DecodeMessage(d.payload);
    if (!query.ok() || query->questions.empty())
      return sim::InterceptVerdict::Pass();
    if (query->questions[0].name.tld() != "com")
      return sim::InterceptVerdict::Pass();
    dns::Message spoof = MakeResponse(*query, dns::RCode::kNXDomain);
    spoof.header.aa = true;
    return sim::InterceptVerdict::Replace(
        sim::Datagram{.src = d.dst, .dst = d.src, .payload = dns::EncodeMessage(spoof)});
  });

  // Without validation: the resolver believes the censor.
  auto naive = env.MakeResolver(false);
  dns::RCode naive_rcode = dns::RCode::kNoError;
  naive->Resolve(N("www.example.com."), RRType::kA,
                 [&](const resolver::ResolutionResult& result) {
                   naive_rcode = result.rcode;
                 });
  env.sim.Run();
  EXPECT_EQ(naive_rcode, dns::RCode::kNXDomain);  // censored successfully

  // With validation: the spoof is detected; the lookup fails closed instead
  // of returning the attacker's answer.
  auto validating = env.MakeResolver(true);
  resolver::ResolutionResult out;
  validating->Resolve(N("www.example.com."), RRType::kA,
                      [&](const resolver::ResolutionResult& result) {
                        out = result;
                      });
  env.sim.Run();
  EXPECT_NE(out.rcode, dns::RCode::kNXDomain);
  EXPECT_GT(validating->stats().manipulation_detected, 0u);
}

TEST(ResolverValidation, LocalRootModeIsImmuneToOnPathCensor) {
  AttackEnv env;
  const sim::NodeId root_node = env.root->node();
  std::uint64_t interceptions = 0;
  env.net.set_interceptor([&, root_node](const sim::Datagram& d)
                              -> sim::InterceptVerdict {
    if (d.dst != root_node) return sim::InterceptVerdict::Pass();
    ++interceptions;
    return sim::InterceptVerdict::Drop();  // blackhole all root traffic
  });

  // A resolver with the zone preloaded never emits a root query, so the
  // censor never gets a shot.
  resolver::ResolverConfig config;
  config.mode = resolver::RootMode::kCachePreload;
  resolver::RecursiveResolver r(env.sim, env.net,
                                {config, topo::GeoPoint{48, 2}});
  env.registry.PlaceNode(r.node(), {48, 2});
  r.SetTldFarm(env.farm.get());
  r.SetLocalZone(env.signed_snapshot);

  dns::RCode rcode = dns::RCode::kServFail;
  r.Resolve(N("www.example.com."), RRType::kA,
            [&](const resolver::ResolutionResult& result) {
              rcode = result.rcode;
            });
  env.sim.Run();
  EXPECT_EQ(rcode, dns::RCode::kNoError);
  EXPECT_EQ(interceptions, 0u);
}

}  // namespace
}  // namespace rootless
