// Unit tests for the util module: bytes, rng, zipf, strings, base64, time.
#include <gtest/gtest.h>

#include <map>

#include "util/base64.h"
#include "util/bytes.h"
#include "util/civil_time.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/zipf.h"

namespace rootless::util {
namespace {

// ---------------------------------------------------------------- Result

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Error("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().message(), "boom");
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.value_or(7), 7);
}

// ----------------------------------------------------------------- bytes

TEST(Bytes, RoundTripFixedWidth) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0102030405060708ULL);
  ByteReader r(w.span());
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  ASSERT_TRUE(r.ReadU8(a));
  ASSERT_TRUE(r.ReadU16(b));
  ASSERT_TRUE(r.ReadU32(c));
  ASSERT_TRUE(r.ReadU64(d));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xDEADBEEF);
  EXPECT_EQ(d, 0x0102030405060708ULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.WriteU16(0x0102);
  ASSERT_EQ(w.data().size(), 2u);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, ReadPastEndFails) {
  ByteWriter w;
  w.WriteU8(1);
  ByteReader r(w.span());
  std::uint32_t v = 0;
  EXPECT_FALSE(r.ReadU32(v));
  // Failed read must not consume.
  std::uint8_t b = 0;
  EXPECT_TRUE(r.ReadU8(b));
  EXPECT_EQ(b, 1);
}

TEST(Bytes, VarintRoundTrip) {
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16384,
                                  0xFFFFFFFFULL, ~0ULL};
  for (std::uint64_t v : values) {
    ByteWriter w;
    w.WriteVarint(v);
    ByteReader r(w.span());
    std::uint64_t out = 0;
    ASSERT_TRUE(r.ReadVarint(out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Bytes, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.WriteVarint(127);
  EXPECT_EQ(w.size(), 1u);
  w.WriteVarint(128);
  EXPECT_EQ(w.size(), 3u);
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  w.WriteU16(0);
  w.WriteU8(9);
  w.PatchU16(0, 0xBEEF);
  ByteReader r(w.span());
  std::uint16_t v = 0;
  ASSERT_TRUE(r.ReadU16(v));
  EXPECT_EQ(v, 0xBEEF);
}

TEST(Bytes, PeekAtDoesNotAdvance) {
  Bytes data = {1, 2, 3};
  ByteReader r(data);
  std::uint8_t v = 0;
  ASSERT_TRUE(r.PeekAt(2, v));
  EXPECT_EQ(v, 3);
  EXPECT_EQ(r.offset(), 0u);
  EXPECT_FALSE(r.PeekAt(3, v));
}

// ------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  int counts[10] = {};
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.Below(10)];
  for (int c : counts) {
    EXPECT_GT(c, kN / 10 * 0.9);
    EXPECT_LT(c, kN / 10 * 1.1);
  }
}

TEST(Rng, UnitDoubleInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UnitDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Rng, PoissonMean) {
  Rng rng(19);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Poisson(4.5));
  EXPECT_NEAR(sum / kN, 4.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaUsesNormalApprox) {
  Rng rng(23);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.Poisson(500.0));
  EXPECT_NEAR(sum / kN, 500.0, 5.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ------------------------------------------------------------------ zipf

TEST(Zipf, RanksInRange) {
  Rng rng(37);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(Zipf, SkewFavorsLowRanks) {
  Rng rng(41);
  ZipfSampler zipf(1000, 1.0);
  int rank0 = 0, rank500 = 0;
  for (int i = 0; i < 100000; ++i) {
    const std::size_t r = zipf.Sample(rng);
    if (r == 0) ++rank0;
    if (r == 500) ++rank500;
  }
  EXPECT_GT(rank0, 50 * std::max(rank500, 1));
}

TEST(Zipf, ZeroSkewIsUniform) {
  Rng rng(43);
  ZipfSampler zipf(10, 0.0);
  int counts[10] = {};
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, kN / 10 * 0.9);
    EXPECT_LT(c, kN / 10 * 1.1);
  }
}

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler zipf(500, 1.2);
  double sum = 0;
  for (std::size_t r = 0; r < 500; ++r) sum += zipf.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, EmpiricalMatchesPmf) {
  Rng rng(47);
  ZipfSampler zipf(50, 0.9);
  std::map<std::size_t, int> counts;
  const int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf.Sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    const double expected = zipf.Pmf(r) * kN;
    EXPECT_NEAR(counts[r], expected, expected * 0.1) << "rank " << r;
  }
}

// --------------------------------------------------------------- strings

TEST(Strings, ToLower) {
  EXPECT_EQ(ToLower("MiXeD.Case"), "mixed.case");
  EXPECT_EQ(ToLower(""), "");
}

TEST(Strings, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("COM", "com"));
  EXPECT_FALSE(EqualsIgnoreCase("com", "org"));
  EXPECT_FALSE(EqualsIgnoreCase("com", "comm"));
}

TEST(Strings, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWhitespace) {
  const auto parts = SplitWhitespace("  foo\t bar  baz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x \r\n"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(*ParseU64("12345"), 12345u);
  EXPECT_EQ(*ParseU64("18446744073709551615"), ~0ULL);
  EXPECT_FALSE(ParseU64("18446744073709551616").ok());
  EXPECT_FALSE(ParseU64("12a").ok());
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("-1").ok());
}

TEST(Strings, ParseU32Overflow) {
  EXPECT_EQ(*ParseU32("4294967295"), 0xFFFFFFFFu);
  EXPECT_FALSE(ParseU32("4294967296").ok());
}

TEST(Strings, Formatters) {
  EXPECT_EQ(FormatCount(5.7e9), "5.70B");
  EXPECT_EQ(FormatCount(4.1e6), "4.10M");
  EXPECT_EQ(FormatPercent(0.61), "61.0%");
  EXPECT_EQ(FormatBytes(1.1 * 1024 * 1024), "1.10 MB");
}

// ---------------------------------------------------------------- base64

TEST(Base64, RoundTrip) {
  const std::string inputs[] = {"", "f", "fo", "foo", "foob", "fooba",
                                "foobar"};
  const std::string expected[] = {"",     "Zg==", "Zm8=",     "Zm9v",
                                  "Zm9vYg==", "Zm9vYmE=", "Zm9vYmFy"};
  for (int i = 0; i < 7; ++i) {
    std::vector<std::uint8_t> bytes(inputs[i].begin(), inputs[i].end());
    EXPECT_EQ(Base64Encode(bytes), expected[i]);
    auto decoded = Base64Decode(expected[i]);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, bytes);
  }
}

TEST(Base64, RejectsInvalid) {
  EXPECT_FALSE(Base64Decode("a!b").ok());
  EXPECT_FALSE(Base64Decode("====a").ok());
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0xFF, 0x12, 0xAB};
  EXPECT_EQ(HexEncode(bytes), "00ff12ab");
  auto decoded = HexDecode("00FF12ab");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, bytes);
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
}

// ------------------------------------------------------------ civil time

TEST(CivilTime, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(CivilFromDays(0), (CivilDate{1970, 1, 1}));
}

TEST(CivilTime, KnownDates) {
  // The paper's DITL collection day.
  EXPECT_EQ(DaysFromCivil({2018, 4, 11}), 17632);
  EXPECT_EQ(CivilFromDays(17632), (CivilDate{2018, 4, 11}));
}

TEST(CivilTime, RoundTripRange) {
  for (std::int64_t d = -100000; d <= 100000; d += 37) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(d)), d);
  }
}

TEST(CivilTime, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(2019));
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2019, 2), 28);
}

TEST(CivilTime, AddMonthsClampsDay) {
  EXPECT_EQ(AddMonths({2019, 1, 31}, 1), (CivilDate{2019, 2, 28}));
  EXPECT_EQ(AddMonths({2019, 12, 15}, 1), (CivilDate{2020, 1, 15}));
  EXPECT_EQ(AddMonths({2019, 1, 15}, -1), (CivilDate{2018, 12, 15}));
}

TEST(CivilTime, AddDays) {
  EXPECT_EQ(AddDays({2018, 2, 23}, 47), (CivilDate{2018, 4, 11}));
}

TEST(CivilTime, Format) {
  EXPECT_EQ(FormatDate({2019, 11, 14}), "2019-11-14");
}

TEST(CivilTime, IsValidDate) {
  EXPECT_TRUE(IsValidDate({2019, 2, 28}));
  EXPECT_FALSE(IsValidDate({2019, 2, 29}));
  EXPECT_FALSE(IsValidDate({2019, 13, 1}));
  EXPECT_FALSE(IsValidDate({2019, 0, 1}));
}

}  // namespace
}  // namespace rootless::util
