// Tests for the §5.3 "recent additions / diffs" channel.
#include <gtest/gtest.h>

#include "distrib/diff_channel.h"
#include "zone/snapshot.h"
#include "zone/evolution.h"

namespace rootless::distrib {
namespace {

zone::EvolutionConfig SmallModel() {
  zone::EvolutionConfig config;
  config.seed = 3;
  config.legacy_tld_count = 30;
  config.peak_tld_count = 60;
  config.rotating_tld_count = 1;
  return config;
}

TEST(DiffChannel, UpToDateSubscriberGetsNothing) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  const auto update = publisher.UpdatesSince(publisher.latest_serial());
  EXPECT_EQ(update.kind, DiffPublisher::Update::Kind::kUpToDate);
  EXPECT_TRUE(update.payload.empty());
}

TEST(DiffChannel, SubscriberFollowsDailyPublishes) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  DiffSubscriber subscriber(model.Snapshot({2019, 4, 1}));

  for (int day = 1; day <= 20; ++day) {
    publisher.Publish(model.Snapshot(util::AddDays({2019, 4, 1}, day)));
  }
  const auto update = publisher.UpdatesSince(subscriber.serial());
  ASSERT_EQ(update.kind, DiffPublisher::Update::Kind::kDiffs);
  ASSERT_TRUE(subscriber.Apply(update).ok());
  EXPECT_EQ(subscriber.serial(), publisher.latest_serial());
  EXPECT_TRUE(subscriber.snapshot()->SameContent(*publisher.latest()));
  EXPECT_EQ(subscriber.updates_applied(), 20u);
  EXPECT_EQ(subscriber.full_bytes_received(), 0u);
  EXPECT_GT(subscriber.diff_bytes_received(), 0u);
}

TEST(DiffChannel, DiffsAreFarSmallerThanFullZone) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  DiffSubscriber subscriber(model.Snapshot({2019, 4, 1}));
  for (int day = 1; day <= 7; ++day) {
    publisher.Publish(model.Snapshot(util::AddDays({2019, 4, 1}, day)));
  }
  const auto update = publisher.UpdatesSince(subscriber.serial());
  ASSERT_TRUE(subscriber.Apply(update).ok());
  const std::size_t full = zone::SerializeSnapshot(*publisher.latest()).size();
  EXPECT_LT(subscriber.diff_bytes_received(), full / 4);
}

TEST(DiffChannel, HistoryMissFallsBackToFullZone) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}), /*max_history=*/3);
  DiffSubscriber subscriber(model.Snapshot({2019, 4, 1}));
  for (int day = 1; day <= 10; ++day) {
    publisher.Publish(model.Snapshot(util::AddDays({2019, 4, 1}, day)));
  }
  const auto update = publisher.UpdatesSince(subscriber.serial());
  ASSERT_EQ(update.kind, DiffPublisher::Update::Kind::kFullZone);
  ASSERT_TRUE(subscriber.Apply(update).ok());
  EXPECT_TRUE(subscriber.snapshot()->SameContent(*publisher.latest()));
  EXPECT_GT(subscriber.full_bytes_received(), 0u);
}

TEST(DiffChannel, RejectsChainFromWrongSerial) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  publisher.Publish(model.Snapshot({2019, 4, 2}));
  const auto update =
      publisher.UpdatesSince(zone::RootZoneModel::SerialFor({2019, 4, 1}));
  ASSERT_EQ(update.kind, DiffPublisher::Update::Kind::kDiffs);

  // A subscriber at a *different* serial must refuse the chain.
  DiffSubscriber wrong(model.Snapshot({2019, 3, 15}));
  EXPECT_FALSE(wrong.Apply(update).ok());
}

TEST(DiffChannel, RejectsCorruptPayload) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2019, 4, 1}));
  publisher.Publish(model.Snapshot({2019, 4, 2}));
  auto update =
      publisher.UpdatesSince(zone::RootZoneModel::SerialFor({2019, 4, 1}));
  update.payload.resize(update.payload.size() / 2);
  DiffSubscriber subscriber(model.Snapshot({2019, 4, 1}));
  EXPECT_FALSE(subscriber.Apply(update).ok());
}

TEST(DiffChannel, NewTldArrivesThroughChannel) {
  const zone::RootZoneModel model(SmallModel());
  DiffPublisher publisher(model.Snapshot({2018, 2, 20}));
  DiffSubscriber subscriber(model.Snapshot({2018, 2, 20}));
  for (int day = 1; day <= 5; ++day) {
    publisher.Publish(model.Snapshot(util::AddDays({2018, 2, 20}, day)));
  }
  ASSERT_TRUE(subscriber.Apply(publisher.UpdatesSince(subscriber.serial())).ok());
  // ".llc" was added 2018-02-23 and must now be visible locally.
  EXPECT_TRUE(subscriber.snapshot()
                  ->Find(*dns::Name::Parse("llc."), dns::RRType::kNS)
                  .has_value());
}

}  // namespace
}  // namespace rootless::distrib
