// Parameterized property tests (TEST_P) sweeping configuration axes:
// RR types through the wire codec, cache capacities, rsync block sizes,
// Zipf skews, RZC content classes, message size limits, and evolution seeds.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/dnssec.h"
#include "distrib/rsync.h"
#include "dns/message.h"
#include "resolver/cache.h"
#include "resolver/refresh_daemon.h"
#include "util/rng.h"
#include "util/zipf.h"
#include "zone/evolution.h"
#include "zone/rzc.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// ----------------------------------------------------- wire codec sweep

class WireCodecProperty : public ::testing::TestWithParam<RRType> {
 protected:
  dns::Rdata RandomRdata(RRType type, util::Rng& rng) {
    auto random_name = [&rng]() {
      std::vector<std::string> labels;
      const std::size_t count = 1 + rng.Below(3);
      for (std::size_t i = 0; i < count; ++i) {
        std::string label;
        const std::size_t len = 1 + rng.Below(10);
        for (std::size_t k = 0; k < len; ++k)
          label.push_back(static_cast<char>('a' + rng.Below(26)));
        labels.push_back(std::move(label));
      }
      return *Name::FromLabels(labels);
    };
    auto random_bytes = [&rng](std::size_t n) {
      util::Bytes out(n);
      for (auto& b : out) b = static_cast<std::uint8_t>(rng.Below(256));
      return out;
    };
    switch (type) {
      case RRType::kA:
        return dns::AData{dns::Ipv4{static_cast<std::uint32_t>(rng.Next())}};
      case RRType::kAAAA: {
        dns::AaaaData d;
        for (auto& b : d.address.addr)
          b = static_cast<std::uint8_t>(rng.Below(256));
        return d;
      }
      case RRType::kNS:
        return dns::NsData{random_name()};
      case RRType::kCNAME:
        return dns::CnameData{random_name()};
      case RRType::kSOA: {
        dns::SoaData d;
        d.mname = random_name();
        d.rname = random_name();
        d.serial = static_cast<std::uint32_t>(rng.Next());
        d.refresh = static_cast<std::uint32_t>(rng.Below(100000));
        d.retry = static_cast<std::uint32_t>(rng.Below(100000));
        d.expire = static_cast<std::uint32_t>(rng.Below(100000));
        d.minimum = static_cast<std::uint32_t>(rng.Below(100000));
        return d;
      }
      case RRType::kMX:
        return dns::MxData{static_cast<std::uint16_t>(rng.Below(65536)),
                           random_name()};
      case RRType::kTXT: {
        dns::TxtData d;
        d.strings.push_back("payload" + std::to_string(rng.Below(1000)));
        return d;
      }
      case RRType::kDS:
        return dns::DsData{static_cast<std::uint16_t>(rng.Below(65536)),
                           static_cast<std::uint8_t>(rng.Below(256)),
                           static_cast<std::uint8_t>(rng.Below(256)),
                           random_bytes(32)};
      case RRType::kDNSKEY:
        return dns::DnskeyData{257, 3,
                               static_cast<std::uint8_t>(rng.Below(256)),
                               random_bytes(32)};
      case RRType::kRRSIG: {
        dns::RrsigData d;
        d.type_covered = RRType::kNS;
        d.algorithm = static_cast<std::uint8_t>(rng.Below(256));
        d.labels = static_cast<std::uint8_t>(rng.Below(10));
        d.original_ttl = static_cast<std::uint32_t>(rng.Below(172800));
        d.expiration = static_cast<std::uint32_t>(rng.Next());
        d.inception = static_cast<std::uint32_t>(rng.Next());
        d.key_tag = static_cast<std::uint16_t>(rng.Below(65536));
        d.signer = random_name();
        d.signature = random_bytes(32);
        return d;
      }
      case RRType::kNSEC: {
        dns::NsecData d;
        d.next = random_name();
        d.types = {RRType::kNS, RRType::kDS, RRType::kRRSIG};
        return d;
      }
      default:
        return dns::RawData{random_bytes(1 + rng.Below(40))};
    }
  }
};

TEST_P(WireCodecProperty, RandomRdataRoundTripsThroughMessages) {
  const RRType type = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(type) * 7919 + 13);
  for (int trial = 0; trial < 50; ++trial) {
    dns::ResourceRecord rr;
    rr.name = N("owner.example.");
    rr.type = type;
    rr.ttl = static_cast<std::uint32_t>(rng.Below(172800));
    rr.rdata = RandomRdata(type, rng);

    dns::Message m = dns::MakeQuery(1, N("q.example."), RRType::kA);
    m.header.qr = true;
    m.answers.push_back(rr);
    const auto wire = dns::EncodeMessage(m);
    auto decoded = dns::DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message();
    ASSERT_EQ(decoded->answers.size(), 1u);
    EXPECT_TRUE(decoded->answers[0] == rr)
        << dns::RRTypeToString(type) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, WireCodecProperty,
    ::testing::Values(RRType::kA, RRType::kAAAA, RRType::kNS, RRType::kCNAME,
                      RRType::kSOA, RRType::kMX, RRType::kTXT, RRType::kDS,
                      RRType::kDNSKEY, RRType::kRRSIG, RRType::kNSEC,
                      static_cast<RRType>(4242)),
    [](const ::testing::TestParamInfo<RRType>& info) {
      std::string name = dns::RRTypeToString(info.param);
      for (char& c : name) {
        if (c < 'A' || (c > 'Z' && c < 'a') || c > 'z') c = '_';
      }
      return name;
    });

// ------------------------------------------------- cache capacity sweep

class CacheCapacityProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacityProperty, InvariantsHoldUnderRandomWorkload) {
  const std::size_t capacity = GetParam();
  resolver::DnsCache cache(capacity);
  util::Rng rng(capacity * 31 + 7);

  std::uint64_t gets = 0;
  for (int i = 0; i < 3000; ++i) {
    const sim::SimTime now = static_cast<sim::SimTime>(i) * sim::kSecond;
    const std::string owner =
        "n" + std::to_string(rng.Below(500)) + ".example.";
    dns::RRsetKey key{N(owner), RRType::kA, dns::RRClass::kIN};
    if (rng.Chance(0.5)) {
      dns::RRset s;
      s.name = key.name;
      s.type = key.type;
      s.ttl = 1 + static_cast<std::uint32_t>(rng.Below(600));
      s.rdatas.push_back(
          dns::AData{dns::Ipv4{static_cast<std::uint32_t>(rng.Next())}});
      cache.Put(s, now);
    } else {
      const dns::RRset* hit = cache.Get(key, now);
      ++gets;
      if (hit != nullptr) {
        EXPECT_TRUE(hit->name == key.name);
      }
    }
    // Core invariant: capacity is never exceeded.
    if (capacity != 0) {
      ASSERT_LE(cache.size(), capacity);
    }
  }
  const auto& stats = cache.stats();
  // Every Get is accounted for exactly once.
  EXPECT_EQ(stats.hits + stats.misses + stats.expired, gets);
  if (capacity == 0) {
    EXPECT_EQ(stats.evictions, 0u);
  }
}

TEST_P(CacheCapacityProperty, MostRecentEntrySurvives) {
  const std::size_t capacity = GetParam();
  if (capacity == 0) GTEST_SKIP() << "unbounded cache never evicts";
  resolver::DnsCache cache(capacity);
  for (std::size_t i = 0; i < capacity * 3; ++i) {
    dns::RRset s;
    s.name = N("n" + std::to_string(i) + ".example.");
    s.type = RRType::kA;
    s.ttl = 3600;
    s.rdatas.push_back(dns::AData{dns::Ipv4{static_cast<std::uint32_t>(i)}});
    cache.Put(s, 0);
    // The just-inserted entry must always be present.
    ASSERT_TRUE(cache.Contains(s.key(), 1)) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacityProperty,
                         ::testing::Values(1, 2, 16, 256, 4096, 0),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return info.param == 0
                                      ? std::string("unbounded")
                                      : "cap" + std::to_string(info.param);
                         });

// ------------------------------------------------ rsync block-size sweep

class RsyncBlockSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsyncBlockSizeProperty, RandomEditsAlwaysReconstruct) {
  const std::size_t block_size = GetParam();
  util::Rng rng(block_size);
  for (int trial = 0; trial < 10; ++trial) {
    util::Bytes base(20000 + rng.Below(20000));
    for (auto& b : base) b = static_cast<std::uint8_t>(rng.Below(64));
    util::Bytes target = base;
    const int edits = static_cast<int>(rng.Below(10));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.Below(target.size());
      switch (rng.Below(3)) {
        case 0: target[pos] ^= 0x5A; break;
        case 1:
          target.insert(target.begin() + pos,
                        static_cast<std::uint8_t>(rng.Below(256)));
          break;
        default: target.erase(target.begin() + pos);
      }
    }
    const auto sig = distrib::ComputeSignature(base, block_size);
    const auto delta = distrib::ComputeDelta(sig, target);
    auto rebuilt = distrib::ApplyDelta(base, delta);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(*rebuilt, target) << "block " << block_size << " trial " << trial;

    // Wire round trip preserves semantics at every block size.
    auto decoded = distrib::DeserializeDelta(distrib::SerializeDelta(delta));
    ASSERT_TRUE(decoded.ok());
    auto rebuilt2 = distrib::ApplyDelta(base, *decoded);
    ASSERT_TRUE(rebuilt2.ok());
    EXPECT_EQ(*rebuilt2, target);
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, RsyncBlockSizeProperty,
                         ::testing::Values(128, 512, 2048, 8192),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "bs" + std::to_string(info.param);
                         });

// ------------------------------------------------------ zipf skew sweep

class ZipfSkewProperty : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewProperty, PmfIsNormalizedAndMonotone) {
  const double s = GetParam();
  util::ZipfSampler zipf(200, s);
  double sum = 0;
  double prev = 1.0;
  for (std::size_t r = 0; r < 200; ++r) {
    const double p = zipf.Pmf(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfSkewProperty, EmpiricalHeadMassMatchesPmf) {
  const double s = GetParam();
  util::ZipfSampler zipf(200, s);
  util::Rng rng(static_cast<std::uint64_t>(s * 1000) + 3);
  const int kN = 100000;
  int head = 0;
  for (int i = 0; i < kN; ++i) head += zipf.Sample(rng) < 10;
  double expected = 0;
  for (std::size_t r = 0; r < 10; ++r) expected += zipf.Pmf(r);
  EXPECT_NEAR(static_cast<double>(head) / kN, expected, 0.01) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewProperty,
                         ::testing::Values(0.0, 0.5, 0.95, 1.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "s" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// ---------------------------------------------------- rzc content sweep

enum class RzcContent { kRandom, kRepetitive, kZoneText, kZeros };

class RzcContentProperty : public ::testing::TestWithParam<RzcContent> {};

TEST_P(RzcContentProperty, RoundTripsAcrossSizes) {
  util::Rng rng(77);
  for (const std::size_t size : {0ul, 1ul, 100ul, 4096ul, 100000ul}) {
    util::Bytes data(size);
    switch (GetParam()) {
      case RzcContent::kRandom:
        for (auto& b : data) b = static_cast<std::uint8_t>(rng.Below(256));
        break;
      case RzcContent::kRepetitive:
        for (std::size_t i = 0; i < size; ++i)
          data[i] = static_cast<std::uint8_t>("abcabcab"[i % 8]);
        break;
      case RzcContent::kZoneText: {
        std::string text;
        while (text.size() < size) {
          text += "tld" + std::to_string(text.size() % 977) +
                  ". 172800 IN NS ns1.dns-operator.net.\n";
        }
        text.resize(size);
        data.assign(text.begin(), text.end());
        break;
      }
      case RzcContent::kZeros:
        break;  // already zeroed
    }
    const auto compressed = zone::RzcCompress(data);
    auto decompressed = zone::RzcDecompress(compressed);
    ASSERT_TRUE(decompressed.ok()) << size;
    EXPECT_EQ(*decompressed, data) << size;
    if (GetParam() != RzcContent::kRandom && size >= 4096) {
      EXPECT_LT(compressed.size(), data.size()) << size;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Contents, RzcContentProperty,
                         ::testing::Values(RzcContent::kRandom,
                                           RzcContent::kRepetitive,
                                           RzcContent::kZoneText,
                                           RzcContent::kZeros),
                         [](const ::testing::TestParamInfo<RzcContent>& info) {
                           switch (info.param) {
                             case RzcContent::kRandom: return "random";
                             case RzcContent::kRepetitive: return "repetitive";
                             case RzcContent::kZoneText: return "zonetext";
                             case RzcContent::kZeros: return "zeros";
                           }
                           return "unknown";
                         });

// ----------------------------------------------- message size-limit sweep

class MessageSizeProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MessageSizeProperty, TruncationInvariants) {
  const std::size_t max_size = GetParam();
  util::Rng rng(max_size);
  for (int trial = 0; trial < 30; ++trial) {
    dns::Message m = dns::MakeQuery(7, N("www.example.com."), RRType::kA);
    m.header.qr = true;
    const std::size_t answers = rng.Below(20);
    for (std::size_t i = 0; i < answers; ++i) {
      m.answers.push_back(
          {N("host" + std::to_string(i) + ".example.com."), RRType::kA,
           dns::RRClass::kIN, 300,
           dns::AData{dns::Ipv4{static_cast<std::uint32_t>(rng.Next())}}});
    }
    const auto full = dns::EncodeMessage(m);
    const auto wire = dns::EncodeMessage(m, max_size);
    if (full.size() > max_size) {
      EXPECT_LE(wire.size(), max_size);
    }
    auto decoded = dns::DecodeMessage(wire);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message();
    EXPECT_EQ(decoded->header.tc, wire.size() < full.size());
    EXPECT_LE(decoded->answers.size(), m.answers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Limits, MessageSizeProperty,
                         ::testing::Values(64, 128, 256, 512, 1232),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "max" + std::to_string(info.param);
                         });

// ---------------------------------------------- evolution seed stability

class EvolutionSeedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvolutionSeedProperty, CalibrationHoldsAcrossSeeds) {
  zone::EvolutionConfig config;
  config.seed = GetParam();
  const zone::RootZoneModel model(config);

  // The published anchors must hold for any seed, not just the default.
  EXPECT_EQ(model.TldCountOn({2013, 6, 15}), 317);
  const int peak = model.TldCountOn({2017, 6, 15});
  EXPECT_GE(peak, 1500);
  EXPECT_LE(peak, 1545);
  int rotating = 0;
  for (const auto& tld : model.roster()) rotating += tld.rotating;
  EXPECT_EQ(rotating, 5);
  ASSERT_NE(model.FindTld("llc"), nullptr);
  EXPECT_EQ(model.FindTld("llc")->add_day,
            util::DaysFromCivil({2018, 2, 23}));

  // Deterministic for equal seeds.
  const zone::RootZoneModel again(config);
  EXPECT_TRUE(model.Snapshot({2018, 4, 11}) == again.Snapshot({2018, 4, 11}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvolutionSeedProperty,
                         ::testing::Values(1u, 42u, 2019u, 31337u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rootless

namespace rootless {
namespace {

// --------------------------------------------- signing window sweep

struct WindowCase {
  std::uint32_t inception;
  std::uint32_t expiration;
  std::uint32_t now;
  bool expect_valid;
};

class SigningWindowProperty : public ::testing::TestWithParam<WindowCase> {};

TEST_P(SigningWindowProperty, ValidityWindowEnforced) {
  const WindowCase& c = GetParam();
  util::Rng rng(55);
  const crypto::SigningKey key = crypto::GenerateKey(crypto::kZskFlags, rng);
  crypto::KeyStore store;
  store.AddKey(key);

  dns::RRset s;
  s.name = *dns::Name::Parse("com.");
  s.type = dns::RRType::kNS;
  s.ttl = 172800;
  s.rdatas.push_back(dns::NsData{*dns::Name::Parse("a.gtld-servers.net.")});

  const auto sig =
      crypto::SignRRset(s, key, dns::Name(), c.inception, c.expiration);
  const auto status = crypto::VerifyRRset(s, sig, key.dnskey, store, c.now);
  EXPECT_EQ(status.ok(), c.expect_valid)
      << "[" << c.inception << "," << c.expiration << "] at " << c.now << ": "
      << status.message();
}

INSTANTIATE_TEST_SUITE_P(
    Windows, SigningWindowProperty,
    ::testing::Values(WindowCase{100, 200, 150, true},
                      WindowCase{100, 200, 100, true},   // inclusive start
                      WindowCase{100, 200, 200, true},   // inclusive end
                      WindowCase{100, 200, 99, false},   // not yet valid
                      WindowCase{100, 200, 201, false},  // expired
                      WindowCase{0, 0xFFFFFFFF, 1'700'000'000, true}),
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      return "w" + std::to_string(info.index);
    });

// ------------------------------------------ refresh lead-time sweep

class RefreshLeadProperty : public ::testing::TestWithParam<int> {};

TEST_P(RefreshLeadProperty, OutageShorterThanLeadNeverExpires) {
  // The paper's robustness window: any outage shorter than the refresh lead
  // is absorbed without lookup impact, for every lead setting.
  const int lead_hours = GetParam();
  sim::Simulator sim;
  resolver::RefreshConfig config;
  config.refresh_lead = lead_hours * sim::kHour;
  config.retry_interval = 30 * sim::kMinute;
  const sim::SimTime outage_start = (48 - lead_hours) * sim::kHour;
  const sim::SimTime outage_end =
      outage_start + (lead_hours - 1) * sim::kHour;  // shorter than the lead
  resolver::RefreshDaemon daemon(
      sim,
      {config,
       {{"fetch",
         [&](std::function<void(resolver::RefreshDaemon::FetchResult)> done) {
           if (sim.now() >= outage_start && sim.now() < outage_end) {
             done(util::Error("outage"));
           } else {
             done(zone::ZoneSnapshot::Build(zone::Zone()));
           }
         }}},
       [](zone::SnapshotPtr) {}});
  daemon.Start(zone::ZoneSnapshot::Build(zone::Zone()));
  sim.RunUntil(4 * sim::kDay);
  EXPECT_EQ(daemon.stats().expirations, 0u) << lead_hours;
  EXPECT_GE(daemon.stats().refreshes, 1u);
}

INSTANTIATE_TEST_SUITE_P(Leads, RefreshLeadProperty,
                         ::testing::Values(2, 6, 12, 24),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "lead" + std::to_string(info.param) + "h";
                         });

}  // namespace
}  // namespace rootless
