// Tests for SHA-256 (FIPS vectors), HMAC (RFC 4231 vectors), and the
// DNSSEC-shaped signing substrate.
#include <gtest/gtest.h>

#include "crypto/dnssec.h"
#include "crypto/sha256.h"
#include "util/base64.h"
#include "util/rng.h"

namespace rootless::crypto {
namespace {

using dns::Name;
using dns::RRset;
using dns::RRType;

std::string HexOf(const Digest256& d) {
  return util::HexEncode(std::span<const std::uint8_t>(d.data(), d.size()));
}

// ---------------------------------------------------------------- SHA-256

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(HexOf(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexOf(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      HexOf(Sha256::Hash(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexOf(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(data.substr(0, split));
    h.Update(data.substr(split));
    EXPECT_EQ(HexOf(h.Finish()), HexOf(Sha256::Hash(data)));
  }
}

TEST(Hmac, Rfc4231Vector1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const Digest256 mac = HmacSha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(HexOf(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Vector2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Digest256 mac = HmacSha256(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(HexOf(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  std::vector<std::uint8_t> key(131, 0xaa);  // RFC 4231 test 6 key shape
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest256 mac = HmacSha256(
      key, std::span<const std::uint8_t>(
               reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  EXPECT_EQ(HexOf(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// ----------------------------------------------------------------- dnssec

RRset SampleRRset() {
  RRset s;
  s.name = *Name::Parse("com.");
  s.type = RRType::kNS;
  s.ttl = 172800;
  s.rdatas.push_back(dns::NsData{*Name::Parse("a.gtld-servers.net.")});
  s.rdatas.push_back(dns::NsData{*Name::Parse("b.gtld-servers.net.")});
  return s;
}

struct Env {
  util::Rng rng{99};
  SigningKey zsk = GenerateKey(kZskFlags, rng);
  SigningKey ksk = GenerateKey(kKskFlags, rng);
  KeyStore store;

  Env() {
    store.AddKey(zsk);
    store.AddKey(ksk);
  }
};

TEST(Dnssec, KeyGeneration) {
  Env env;
  EXPECT_EQ(env.zsk.dnskey.flags, kZskFlags);
  EXPECT_TRUE(env.ksk.dnskey.is_ksk());
  EXPECT_FALSE(env.zsk.dnskey.is_ksk());
  EXPECT_EQ(env.zsk.dnskey.public_key.size(), 32u);
  EXPECT_NE(env.zsk.secret, env.ksk.secret);
}

TEST(Dnssec, KeyTagIsStable) {
  Env env;
  EXPECT_EQ(ComputeKeyTag(env.zsk.dnskey), ComputeKeyTag(env.zsk.dnskey));
  EXPECT_NE(ComputeKeyTag(env.zsk.dnskey), ComputeKeyTag(env.ksk.dnskey));
}

TEST(Dnssec, SignAndVerify) {
  Env env;
  const RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  EXPECT_EQ(sig.type_covered, RRType::kNS);
  EXPECT_EQ(sig.labels, 1);
  EXPECT_EQ(sig.key_tag, env.zsk.key_tag());
  EXPECT_TRUE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, VerifyRejectsTampering) {
  Env env;
  RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  // Tamper with the data: point com. at an attacker's server.
  std::get<dns::NsData>(s.rdatas[0]).nameserver =
      *Name::Parse("evil.example.");
  EXPECT_FALSE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, VerifyRejectsTtlStretchButAllowsCanonicalTtl) {
  // The signature covers original_ttl, so verification is TTL-independent as
  // long as the RRSIG's original_ttl is used — which our canonical form does.
  Env env;
  RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  s.ttl = 60;  // cache-decremented TTL must not break validation
  EXPECT_TRUE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, VerifyRejectsOutsideValidityWindow) {
  Env env;
  const RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  EXPECT_FALSE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 999).ok());
  EXPECT_FALSE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 2001).ok());
  EXPECT_TRUE(VerifyRRset(s, sig, env.zsk.dnskey, env.store, 2000).ok());
}

TEST(Dnssec, VerifyRejectsWrongKey) {
  Env env;
  const RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  EXPECT_FALSE(VerifyRRset(s, sig, env.ksk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, VerifyRejectsUnknownKey) {
  Env env;
  const RRset s = SampleRRset();
  const auto sig = SignRRset(s, env.zsk, Name(), 1000, 2000);
  KeyStore empty;
  EXPECT_FALSE(VerifyRRset(s, sig, env.zsk.dnskey, empty, 1500).ok());
}

TEST(Dnssec, RdataOrderDoesNotAffectSignature) {
  Env env;
  RRset a = SampleRRset();
  RRset b = SampleRRset();
  std::swap(b.rdatas[0], b.rdatas[1]);
  const auto sig_a = SignRRset(a, env.zsk, Name(), 1000, 2000);
  const auto sig_b = SignRRset(b, env.zsk, Name(), 1000, 2000);
  EXPECT_EQ(sig_a.signature, sig_b.signature);
  EXPECT_TRUE(VerifyRRset(b, sig_a, env.zsk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, OwnerCaseDoesNotAffectSignature) {
  Env env;
  RRset a = SampleRRset();
  RRset b = SampleRRset();
  b.name = *Name::Parse("CoM.");
  const auto sig_a = SignRRset(a, env.zsk, Name(), 1000, 2000);
  EXPECT_TRUE(VerifyRRset(b, sig_a, env.zsk.dnskey, env.store, 1500).ok());
}

TEST(Dnssec, DsMatchesKey) {
  Env env;
  const Name owner = *Name::Parse("com.");
  const auto ds = MakeDs(owner, env.ksk.dnskey);
  EXPECT_TRUE(DsMatchesKey(ds, owner, env.ksk.dnskey));
  EXPECT_FALSE(DsMatchesKey(ds, owner, env.zsk.dnskey));
  EXPECT_FALSE(DsMatchesKey(ds, *Name::Parse("org."), env.ksk.dnskey));
}

TEST(Dnssec, ZoneDigestDetectsAnyChange) {
  std::vector<RRset> zone = {SampleRRset()};
  const Digest256 d1 = ZoneDigest(zone);
  std::get<dns::NsData>(zone[0].rdatas[0]).nameserver =
      *Name::Parse("x.example.");
  const Digest256 d2 = ZoneDigest(zone);
  EXPECT_NE(HexOf(d1), HexOf(d2));
}

TEST(Dnssec, ZoneDigestIsOrderIndependent) {
  RRset a = SampleRRset();
  RRset b = SampleRRset();
  b.name = *Name::Parse("org.");
  const Digest256 d1 = ZoneDigest({a, b});
  const Digest256 d2 = ZoneDigest({b, a});
  EXPECT_EQ(HexOf(d1), HexOf(d2));
}

TEST(Dnssec, SignAndValidateWholeZone) {
  Env env;
  RRset com = SampleRRset();
  RRset org = SampleRRset();
  org.name = *Name::Parse("org.");
  const auto signed_zone = SignZoneRRsets({com, org}, env.zsk, Name(), 0, 10000);
  EXPECT_EQ(signed_zone.size(), 4u);  // 2 data + 2 RRSIG
  auto validated = ValidateZoneRRsets(signed_zone, env.zsk.dnskey, env.store,
                                      5000);
  ASSERT_TRUE(validated.ok()) << validated.error().message();
  EXPECT_EQ(*validated, 2u);
}

TEST(Dnssec, ValidateZoneRejectsTamperedRRset) {
  Env env;
  auto signed_zone = SignZoneRRsets({SampleRRset()}, env.zsk, Name(), 0, 10000);
  for (auto& s : signed_zone) {
    if (s.type == RRType::kNS) {
      std::get<dns::NsData>(s.rdatas[0]).nameserver =
          *Name::Parse("evil.example.");
    }
  }
  EXPECT_FALSE(
      ValidateZoneRRsets(signed_zone, env.zsk.dnskey, env.store, 5000).ok());
}

TEST(Dnssec, ValidateZoneRejectsUnsignedRRset) {
  Env env;
  auto signed_zone = SignZoneRRsets({SampleRRset()}, env.zsk, Name(), 0, 10000);
  RRset extra = SampleRRset();
  extra.name = *Name::Parse("injected.");
  signed_zone.push_back(extra);
  EXPECT_FALSE(
      ValidateZoneRRsets(signed_zone, env.zsk.dnskey, env.store, 5000).ok());
}

}  // namespace
}  // namespace rootless::crypto
