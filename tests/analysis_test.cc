// Tests for the stats/report utilities.
#include <gtest/gtest.h>

#include "analysis/report.h"
#include "analysis/stats.h"
#include "util/rng.h"

namespace rootless::analysis {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, PercentilesAreOrdered) {
  Histogram h;
  util::Rng rng(1);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Exponential(100.0));
  EXPECT_LE(h.Percentile(50), h.Percentile(90));
  EXPECT_LE(h.Percentile(90), h.Percentile(99));
  // Median of Exp(100) is ~69; buckets are coarse, allow slack.
  EXPECT_GT(h.Percentile(50), 40.0);
  EXPECT_LT(h.Percentile(50), 110.0);
  EXPECT_NEAR(h.mean(), 100.0, 5.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.Percentile(100), 42.0);
}

TEST(TimeSeries, OrderedByDate) {
  TimeSeries series;
  series.Set({2016, 5, 15}, 2.0);
  series.Set({2015, 3, 15}, 1.0);
  series.Set({2019, 5, 15}, 3.0);
  ASSERT_EQ(series.points().size(), 3u);
  EXPECT_EQ(series.points().begin()->first.year, 2015);
  EXPECT_DOUBLE_EQ(series.MaxValue(), 3.0);
  EXPECT_DOUBLE_EQ(series.MinValue(), 1.0);
}

TEST(Table, RendersAligned) {
  Table table({"tld", "queries"});
  table.AddRow({"com", "12345"});
  table.AddRow({"verylongtldname", "1"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| tld             |"), std::string::npos);
  EXPECT_NE(out.find("| com             |"), std::string::npos);
  EXPECT_NE(out.find("verylongtldname"), std::string::npos);
  // Missing cells render empty rather than crashing.
  Table short_row({"a", "b"});
  short_row.AddRow({"only"});
  EXPECT_FALSE(short_row.Render().empty());
}

TEST(RenderSeries, ContainsDatesAndBars) {
  TimeSeries series;
  series.Set({2015, 3, 15}, 10);
  series.Set({2019, 5, 15}, 100);
  const std::string out = RenderSeries(series, "instances");
  EXPECT_NE(out.find("2015-03-15"), std::string::npos);
  EXPECT_NE(out.find("####"), std::string::npos);
  // The larger value has the longer bar.
  const auto first_bar = out.find('#');
  ASSERT_NE(first_bar, std::string::npos);
}

TEST(Banner, WrapsTitle) {
  const std::string out = Banner("Figure 1");
  EXPECT_NE(out.find("= Figure 1 ="), std::string::npos);
}

}  // namespace
}  // namespace rootless::analysis
