// Tests for the zone container, master-file parser, root hints, diff, RZC.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "zone/master_file.h"
#include "zone/root_hints.h"
#include "zone/rzc.h"
#include "zone/zone.h"
#include "zone/zone_diff.h"

namespace rootless::zone {
namespace {

using dns::Name;
using dns::ResourceRecord;
using dns::RRClass;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

Zone SampleRootZone() {
  Zone zone;  // apex = "."
  dns::SoaData soa;
  soa.mname = N("a.root-servers.net.");
  soa.rname = N("nstld.verisign-grs.com.");
  soa.serial = 2019060700;
  EXPECT_TRUE(zone.AddRecord({Name(), RRType::kSOA, RRClass::kIN, 86400, soa})
                  .ok());
  EXPECT_TRUE(zone.AddRecord({Name(), RRType::kNS, RRClass::kIN, 518400,
                              dns::NsData{N("a.root-servers.net.")}})
                  .ok());
  // com. delegation with in-zone glue.
  EXPECT_TRUE(zone.AddRecord({N("com."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("a.gtld-servers.net.")}})
                  .ok());
  EXPECT_TRUE(zone.AddRecord({N("com."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("ns.nic.com.")}})
                  .ok());
  EXPECT_TRUE(zone.AddRecord({N("ns.nic.com."), RRType::kA, RRClass::kIN,
                              172800, dns::AData{*dns::Ipv4::Parse("192.0.2.9")}})
                  .ok());
  EXPECT_TRUE(zone.AddRecord({N("com."), RRType::kDS, RRClass::kIN, 86400,
                              dns::DsData{1, 8, 2, {0xAA}}})
                  .ok());
  // org. delegation without glue.
  EXPECT_TRUE(zone.AddRecord({N("org."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("a0.org.afilias-nst.info.")}})
                  .ok());
  return zone;
}

// ------------------------------------------------------------------ zone

TEST(Zone, AddAndFind) {
  const Zone zone = SampleRootZone();
  ASSERT_NE(zone.Find(N("com."), RRType::kNS), nullptr);
  EXPECT_EQ(zone.Find(N("com."), RRType::kNS)->size(), 2u);
  EXPECT_EQ(zone.Find(N("com."), RRType::kA), nullptr);
  EXPECT_TRUE(zone.HasName(N("com.")));
  EXPECT_FALSE(zone.HasName(N("net.")));
  EXPECT_EQ(zone.Serial(), 2019060700u);
}

TEST(Zone, RejectsOutOfZoneRecord) {
  Zone zone(N("com."));
  EXPECT_FALSE(
      zone.AddRecord({N("org."), RRType::kNS, RRClass::kIN, 60,
                      dns::NsData{N("ns.example.")}})
          .ok());
}

TEST(Zone, LookupReferral) {
  const Zone zone = SampleRootZone();
  const auto result = zone.Lookup(N("www.sigcomm.com."), RRType::kA);
  EXPECT_EQ(result.disposition, LookupDisposition::kReferral);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, RRType::kNS);
  EXPECT_TRUE(result.authority[0].name == N("com."));
  // Glue for the in-zone nameserver only.
  ASSERT_EQ(result.additional.size(), 1u);
  EXPECT_TRUE(result.additional[0].name == N("ns.nic.com."));
}

TEST(Zone, LookupReferralAtDelegationName) {
  const Zone zone = SampleRootZone();
  // Query for com./NS at the root is a referral, not an answer: the root is
  // not authoritative for com.
  const auto result = zone.Lookup(N("com."), RRType::kNS);
  EXPECT_EQ(result.disposition, LookupDisposition::kReferral);
}

TEST(Zone, LookupDsAtDelegationIsAuthoritative) {
  const Zone zone = SampleRootZone();
  const auto result = zone.Lookup(N("com."), RRType::kDS);
  EXPECT_EQ(result.disposition, LookupDisposition::kAnswer);
  ASSERT_EQ(result.answers.size(), 1u);
  EXPECT_EQ(result.answers[0].type, RRType::kDS);
}

TEST(Zone, LookupReferralWithDnssecIncludesDs) {
  const Zone zone = SampleRootZone();
  const auto result = zone.Lookup(N("shop.example.com."), RRType::kA, true);
  EXPECT_EQ(result.disposition, LookupDisposition::kReferral);
  bool has_ds = false;
  for (const auto& s : result.authority) has_ds |= (s.type == RRType::kDS);
  EXPECT_TRUE(has_ds);
}

TEST(Zone, LookupNxDomain) {
  const Zone zone = SampleRootZone();
  const auto result = zone.Lookup(N("bogus-tld-query."), RRType::kA);
  EXPECT_EQ(result.disposition, LookupDisposition::kNxDomain);
  ASSERT_EQ(result.authority.size(), 1u);
  EXPECT_EQ(result.authority[0].type, RRType::kSOA);
}

TEST(Zone, LookupNoData) {
  const Zone zone = SampleRootZone();
  // org. exists (NS) but has no DS.
  const auto result = zone.Lookup(N("org."), RRType::kDS);
  EXPECT_EQ(result.disposition, LookupDisposition::kNoData);
}

TEST(Zone, LookupApexAnswer) {
  const Zone zone = SampleRootZone();
  const auto result = zone.Lookup(Name(), RRType::kSOA);
  EXPECT_EQ(result.disposition, LookupDisposition::kAnswer);
}

TEST(Zone, LookupOutOfZone) {
  Zone zone(N("com."));
  const auto result = zone.Lookup(N("example.org."), RRType::kA);
  EXPECT_EQ(result.disposition, LookupDisposition::kOutOfZone);
}

TEST(Zone, DelegatedChildren) {
  const Zone zone = SampleRootZone();
  const auto children = zone.DelegatedChildren();
  ASSERT_EQ(children.size(), 2u);
  EXPECT_TRUE(children[0] == N("com."));
  EXPECT_TRUE(children[1] == N("org."));
}

TEST(Zone, RecordAndRRsetCounts) {
  const Zone zone = SampleRootZone();
  EXPECT_EQ(zone.rrset_count(), 6u);
  EXPECT_EQ(zone.record_count(), 7u);  // com. NS set has 2 records
}

TEST(Zone, RemoveRRset) {
  Zone zone = SampleRootZone();
  EXPECT_TRUE(zone.RemoveRRset({N("com."), RRType::kDS, RRClass::kIN}));
  EXPECT_FALSE(zone.RemoveRRset({N("com."), RRType::kDS, RRClass::kIN}));
  EXPECT_EQ(zone.Find(N("com."), RRType::kDS), nullptr);
}

// ----------------------------------------------------------- master file

TEST(MasterFile, ParsesDirectivesAndRecords) {
  const std::string text = R"(
$ORIGIN .
$TTL 86400
.            518400  IN  NS  a.root-servers.net.
com.         172800  IN  NS  a.gtld-servers.net.
; comment line
org.                 IN  NS  a0.org.afilias-nst.info. ; trailing comment
)";
  auto records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.error().message();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].ttl, 518400u);
  EXPECT_EQ((*records)[2].ttl, 86400u);  // $TTL default
  EXPECT_TRUE((*records)[1].name == N("com."));
}

TEST(MasterFile, OwnerInheritance) {
  const std::string text =
      "example.com. 300 IN NS ns1.example.com.\n"
      "             300 IN NS ns2.example.com.\n";
  auto records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.error().message();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE((*records)[1].name == N("example.com."));
}

TEST(MasterFile, AtSignAndRelativeNames) {
  const std::string text =
      "$ORIGIN example.com.\n"
      "@   300 IN NS ns1\n"
      "www 300 IN CNAME @\n";
  auto records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.error().message();
  ASSERT_EQ(records->size(), 2u);
  EXPECT_TRUE((*records)[0].name == N("example.com."));
  EXPECT_TRUE(std::get<dns::NsData>((*records)[0].rdata).nameserver ==
              N("ns1.example.com."));
  EXPECT_TRUE((*records)[1].name == N("www.example.com."));
}

TEST(MasterFile, ParenthesesJoinLines) {
  const std::string text = R"(
example.com. 300 IN SOA ns1.example.com. admin.example.com. (
    2019060700 ; serial
    1800       ; refresh
    900        ; retry
    604800     ; expire
    86400 )    ; minimum
)";
  auto records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.error().message();
  ASSERT_EQ(records->size(), 1u);
  const auto& soa = std::get<dns::SoaData>((*records)[0].rdata);
  EXPECT_EQ(soa.serial, 2019060700u);
  EXPECT_EQ(soa.minimum, 86400u);
}

TEST(MasterFile, QuotedTxt) {
  const std::string text =
      "example.com. 60 IN TXT \"hello world\" \"and more\"\n";
  auto records = ParseMasterFile(text);
  ASSERT_TRUE(records.ok()) << records.error().message();
  const auto& txt = std::get<dns::TxtData>((*records)[0].rdata);
  ASSERT_EQ(txt.strings.size(), 2u);
  EXPECT_EQ(txt.strings[0], "hello world");
}

TEST(MasterFile, TtlAndClassInEitherOrder) {
  auto a = ParseMasterFile("example.com. IN 300 NS ns.example.com.\n");
  ASSERT_TRUE(a.ok()) << a.error().message();
  EXPECT_EQ((*a)[0].ttl, 300u);
  auto b = ParseMasterFile("example.com. 300 IN NS ns.example.com.\n");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)[0].ttl, (*b)[0].ttl);
}

TEST(MasterFile, Errors) {
  EXPECT_FALSE(ParseMasterFile("example.com. 300 IN BOGUSTYPE data\n").ok());
  EXPECT_FALSE(ParseMasterFile("example.com. 300 IN\n").ok());
  EXPECT_FALSE(ParseMasterFile("example.com. 300 IN A 1.2.3\n").ok());
  EXPECT_FALSE(ParseMasterFile("( unbalanced\n").ok());
  EXPECT_FALSE(ParseMasterFile("x 1 IN TXT \"unterminated\n").ok());
  EXPECT_FALSE(ParseMasterFile("$BOGUS directive\n").ok());
}

TEST(MasterFile, SerializeParseRoundTrip) {
  const Zone zone = SampleRootZone();
  const auto records = zone.AllRecords();
  const std::string text = SerializeMasterFile(records);
  auto reparsed = ParseMasterFile(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message();
  ASSERT_EQ(reparsed->size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE((*reparsed)[i] == records[i]) << records[i].ToString();
  }
}

// ------------------------------------------------------------ root hints

TEST(RootHints, StandardHas13ServersAnd39Entries) {
  const RootHints hints = RootHints::Standard();
  EXPECT_EQ(hints.servers().size(), 13u);
  EXPECT_EQ(hints.entry_count(), 39u);  // the paper's count
  EXPECT_EQ(hints.ToRecords().size(), 39u);
}

TEST(RootHints, FileSizeIsRoughly3KB) {
  // The paper: "roughly 3KB".
  const std::size_t size = RootHints::Standard().FileSizeBytes();
  EXPECT_GT(size, 1500u);
  EXPECT_LT(size, 5000u);
}

TEST(RootHints, FindByLetter) {
  const RootHints hints = RootHints::Standard();
  const auto* j = hints.FindByLetter('j');
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->ipv4.ToString(), "192.58.128.30");
  EXPECT_EQ(hints.FindByLetter('z'), nullptr);
}

TEST(RootHints, RoundTripThroughRecords) {
  const RootHints hints = RootHints::Standard();
  auto rebuilt = RootHints::FromRecords(hints.ToRecords());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().message();
  EXPECT_EQ(rebuilt->servers().size(), 13u);
  EXPECT_EQ(rebuilt->FindByLetter('m')->ipv4.ToString(), "202.12.27.33");
}

TEST(RootHints, AllRecordsUseHintsTtl) {
  for (const auto& rr : RootHints::Standard().ToRecords()) {
    EXPECT_EQ(rr.ttl, kRootHintsTtl);
  }
}

// ------------------------------------------------------------------ diff

TEST(ZoneDiff, DetectsAddRemoveChange) {
  Zone old_zone = SampleRootZone();
  Zone new_zone = SampleRootZone();
  // add net.
  ASSERT_TRUE(new_zone
                  .AddRecord({N("net."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("a.gtld-servers.net.")}})
                  .ok());
  // remove org.
  ASSERT_TRUE(new_zone.RemoveRRset({N("org."), RRType::kNS, RRClass::kIN}));
  // change com. NS
  ASSERT_TRUE(new_zone.RemoveRRset({N("com."), RRType::kNS, RRClass::kIN}));
  ASSERT_TRUE(new_zone
                  .AddRecord({N("com."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("c.gtld-servers.net.")}})
                  .ok());

  const ZoneDiff diff = DiffZones(old_zone, new_zone);
  EXPECT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.changed.size(), 1u);
  EXPECT_EQ(diff.change_count(), 3u);
  EXPECT_FALSE(diff.empty());
}

TEST(ZoneDiff, IdenticalZonesProduceEmptyDiff) {
  const Zone zone = SampleRootZone();
  EXPECT_TRUE(DiffZones(zone, zone).empty());
}

TEST(ZoneDiff, ApplyReconstructsNewZone) {
  Zone old_zone = SampleRootZone();
  Zone new_zone = SampleRootZone();
  ASSERT_TRUE(new_zone
                  .AddRecord({N("dev."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("ns1.nic.dev.")}})
                  .ok());
  ASSERT_TRUE(new_zone.RemoveRRset({N("com."), RRType::kDS, RRClass::kIN}));

  const ZoneDiff diff = DiffZones(old_zone, new_zone);
  Zone patched = old_zone;
  ASSERT_TRUE(ApplyDiff(patched, diff).ok());
  EXPECT_TRUE(patched == new_zone);
}

TEST(ZoneDiff, ApplyFailsOnMissingKey) {
  Zone zone = SampleRootZone();
  ZoneDiff diff;
  diff.removed.push_back({N("nonexistent."), RRType::kNS, RRClass::kIN});
  EXPECT_FALSE(ApplyDiff(zone, diff).ok());
}

TEST(ZoneDiff, SerializationRoundTrip) {
  Zone old_zone = SampleRootZone();
  Zone new_zone = SampleRootZone();
  ASSERT_TRUE(new_zone
                  .AddRecord({N("app."), RRType::kNS, RRClass::kIN, 172800,
                              dns::NsData{N("ns1.nic.app.")}})
                  .ok());
  ASSERT_TRUE(new_zone.RemoveRRset({N("org."), RRType::kNS, RRClass::kIN}));

  const ZoneDiff diff = DiffZones(old_zone, new_zone);
  const auto wire = SerializeDiff(diff);
  auto decoded = DeserializeDiff(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();

  Zone patched = old_zone;
  ASSERT_TRUE(ApplyDiff(patched, *decoded).ok());
  EXPECT_TRUE(patched == new_zone);
}

TEST(ZoneDiff, DeserializeRejectsGarbage) {
  util::Bytes junk = {1, 2, 3, 4, 5};
  EXPECT_FALSE(DeserializeDiff(junk).ok());
}

// ------------------------------------------------------------------- rzc

TEST(Rzc, RoundTripText) {
  const std::string text =
      "com. 172800 IN NS a.gtld-servers.net.\n"
      "com. 172800 IN NS b.gtld-servers.net.\n"
      "net. 172800 IN NS a.gtld-servers.net.\n";
  const auto compressed = RzcCompressText(text);
  auto decompressed = RzcDecompressText(compressed);
  ASSERT_TRUE(decompressed.ok()) << decompressed.error().message();
  EXPECT_EQ(*decompressed, text);
}

TEST(Rzc, EmptyInput) {
  const auto compressed = RzcCompressText("");
  auto decompressed = RzcDecompressText(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, "");
}

TEST(Rzc, CompressesRepetitiveZoneText) {
  // Zone files are highly repetitive; expect a solid ratio.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    text += "tld" + std::to_string(i) +
            ". 172800 IN NS ns1.dns-operator-shared.net.\n";
  }
  const auto compressed = RzcCompressText(text);
  EXPECT_LT(compressed.size(), text.size() / 3);
  auto decompressed = RzcDecompressText(compressed);
  ASSERT_TRUE(decompressed.ok());
  EXPECT_EQ(*decompressed, text);
}

TEST(Rzc, RejectsCorruptInput) {
  const auto compressed = RzcCompressText("some zone data some zone data");
  EXPECT_FALSE(RzcDecompress(util::Bytes{1, 2, 3, 4, 5, 6}).ok());
  auto truncated = compressed;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(RzcDecompress(truncated).ok());
  auto flipped = compressed;
  flipped[flipped.size() - 1] ^= 0xFF;
  // Either an error or a size mismatch — must not crash or return wrong data
  // silently claiming success with matching size.
  auto result = RzcDecompress(flipped);
  if (result.ok()) {
    EXPECT_EQ(result->size(), 29u);
  }
}

TEST(RzcProperty, RandomBuffersRoundTrip) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    util::Bytes data(rng.Below(5000));
    // Mix of random and repetitive content.
    const bool repetitive = rng.Chance(0.5);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = repetitive ? static_cast<std::uint8_t>(i % 17)
                           : static_cast<std::uint8_t>(rng.Below(256));
    }
    const auto compressed = RzcCompress(data);
    auto decompressed = RzcDecompress(compressed);
    ASSERT_TRUE(decompressed.ok());
    EXPECT_EQ(*decompressed, data);
  }
}

}  // namespace
}  // namespace rootless::zone
