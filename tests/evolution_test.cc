// Tests for the root-zone evolution model: calibration against the paper's
// published numbers (Fig 1, §5.2, §5.3) and internal consistency.
#include <gtest/gtest.h>

#include "zone/evolution.h"
#include "zone/master_file.h"
#include "zone/zone_diff.h"

namespace rootless::zone {
namespace {

using util::CivilDate;

// The model is deterministic; share one instance across tests (construction
// builds the full roster and churn history).
const RootZoneModel& Model() {
  static const RootZoneModel* model = new RootZoneModel();
  return *model;
}

TEST(Evolution, TldCountMatchesPaperShape) {
  const auto& m = Model();
  // Stable legacy period (paper: 317 TLDs on 2013-06-15).
  EXPECT_EQ(m.TldCountOn({2013, 6, 15}), 317);
  // Peak after the ramp (paper: 1,534 on 2017-06-15).
  const int peak = m.TldCountOn({2017, 6, 15});
  EXPECT_GE(peak, 1500);
  EXPECT_LE(peak, 1545);
  // Roughly stable into 2019 (paper: 1,532 on 2019-04-01).
  const int in2019 = m.TldCountOn({2019, 4, 1});
  EXPECT_GE(in2019, 1500);
  EXPECT_LE(in2019, 1560);
}

TEST(Evolution, RampIsMonotonic) {
  const auto& m = Model();
  int prev = 0;
  for (int year = 2014; year <= 2017; ++year) {
    const int count = m.TldCountOn({year, 1, 15});
    EXPECT_GE(count, prev);
    prev = count;
  }
}

TEST(Evolution, RecordCountGrowsFiveFold) {
  const auto& m = Model();
  const std::size_t before = m.Snapshot({2013, 12, 15}).record_count();
  const std::size_t after = m.Snapshot({2017, 6, 15}).record_count();
  // Paper Fig 1: increase over five-fold between early 2014 and early 2017.
  EXPECT_GT(after, before * 4);
  EXPECT_LT(after, before * 7);
  // Plateau near 22K records (paper: "roughly 22K entries").
  EXPECT_GT(after, 18000u);
  EXPECT_LT(after, 26000u);
}

TEST(Evolution, SnapshotIsDeterministic) {
  const auto& m = Model();
  const Zone a = m.Snapshot({2018, 4, 11});
  const Zone b = m.Snapshot({2018, 4, 11});
  EXPECT_TRUE(a == b);
}

TEST(Evolution, SerialEncodesDate) {
  EXPECT_EQ(RootZoneModel::SerialFor({2019, 4, 1}), 2019040100u);
  const auto& m = Model();
  EXPECT_EQ(m.Snapshot({2019, 4, 1}).Serial(), 2019040100u);
}

TEST(Evolution, LlcAddedOnPaperDate) {
  const auto& m = Model();
  const TldRecord* llc = m.FindTld("llc");
  ASSERT_NE(llc, nullptr);
  EXPECT_EQ(llc->add_day, util::DaysFromCivil({2018, 2, 23}));
  // .llc is the last TLD added before the DITL-2018 collection (§5.3).
  const TldRecord* last = m.LastAddedBefore({2018, 4, 11});
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->label, "llc");
}

TEST(Evolution, SnapshotContainsLlcAfterAddDate) {
  const auto& m = Model();
  const Zone before = m.Snapshot({2018, 2, 22});
  const Zone after = m.Snapshot({2018, 2, 24});
  EXPECT_EQ(before.Find(*dns::Name::Parse("llc."), dns::RRType::kNS), nullptr);
  EXPECT_NE(after.Find(*dns::Name::Parse("llc."), dns::RRType::kNS), nullptr);
}

TEST(Evolution, RotatingTldCount) {
  const auto& m = Model();
  int rotating = 0;
  for (const auto& tld : m.roster()) rotating += tld.rotating;
  EXPECT_EQ(rotating, 5);  // the paper's five NeuStar TLDs
}

TEST(Evolution, RotatingTldsUnreachableAfterAMonth) {
  const auto& m = Model();
  for (const auto& tld : m.roster()) {
    if (!tld.rotating) continue;
    EXPECT_FALSE(m.TldReachableAcross(tld, {2019, 4, 1}, {2019, 5, 1}))
        << tld.label;
  }
}

TEST(Evolution, RotatingTldsReachableWithin14Days) {
  const auto& m = Model();
  for (const auto& tld : m.roster()) {
    if (!tld.rotating) continue;
    // Paper: overlap guarantees reachability for zones <= 14 days stale.
    for (int offset = 0; offset < 28; offset += 7) {
      const CivilDate start = util::AddDays({2019, 4, 1}, offset);
      EXPECT_TRUE(m.TldReachableAcross(tld, start, util::AddDays(start, 14)))
          << tld.label << " from " << util::FormatDate(start);
    }
  }
}

TEST(Evolution, MonthStalenessMatchesPaper) {
  // Paper §5.2: 99.6% of TLDs reachable with a one-month-old zone file
  // (all but the five rotating ones).
  const auto& m = Model();
  const CivilDate old_date{2019, 4, 1};
  const CivilDate new_date{2019, 5, 1};
  int active = 0, reachable = 0;
  for (const auto* tld : m.ActiveTlds(old_date)) {
    if (!tld->ActiveOn(util::DaysFromCivil(new_date))) continue;
    ++active;
    reachable += m.TldReachableAcross(*tld, old_date, new_date);
  }
  const double fraction = static_cast<double>(reachable) / active;
  EXPECT_GT(fraction, 0.985);
  EXPECT_LT(fraction, 1.0);
}

TEST(Evolution, YearStalenessMatchesPaper) {
  // Paper §5.2: all but 50 TLDs (3.3%) retain reachability across a year.
  const auto& m = Model();
  const CivilDate old_date{2018, 4, 1};
  const CivilDate new_date{2019, 4, 1};
  int active = 0, reachable = 0;
  for (const auto* tld : m.ActiveTlds(old_date)) {
    if (!tld->ActiveOn(util::DaysFromCivil(new_date))) continue;
    ++active;
    reachable += m.TldReachableAcross(*tld, old_date, new_date);
  }
  const double fraction = static_cast<double>(reachable) / active;
  EXPECT_GT(fraction, 0.93);
  EXPECT_LT(fraction, 0.995);
}

TEST(Evolution, DailyDiffIsSmall) {
  const auto& m = Model();
  const Zone day1 = m.Snapshot({2019, 4, 1});
  const Zone day2 = m.Snapshot({2019, 4, 2});
  const ZoneDiff diff = DiffZones(day1, day2);
  // Serial change + a handful of churn events.
  EXPECT_GE(diff.change_count(), 1u);
  EXPECT_LT(diff.change_count(), 80u);
}

TEST(Evolution, SnapshotServesAsMasterFile) {
  const auto& m = Model();
  const Zone zone = m.Snapshot({2019, 6, 7});
  const std::string text = SerializeMasterFile(zone.AllRecords());
  // Paper: ~1.1 MB compressed, a couple MB raw.
  EXPECT_GT(text.size(), 500u * 1024);
  auto reparsed = ParseMasterFile(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().message();
  EXPECT_EQ(reparsed->size(), zone.record_count());
}

TEST(Evolution, ActiveTldsMatchesSnapshotDelegations) {
  const auto& m = Model();
  const CivilDate date{2018, 4, 11};
  const auto active = m.ActiveTlds(date);
  const Zone zone = m.Snapshot(date);
  EXPECT_EQ(active.size(), zone.DelegatedChildren().size());
}

TEST(Evolution, OrdinaryTldsStableAcrossAMonthMostly) {
  // Non-rotating TLDs overwhelmingly keep at least one stable NS across a
  // month; spot check a few known-legacy labels.
  const auto& m = Model();
  for (const char* label : {"com", "net", "org"}) {
    const TldRecord* tld = m.FindTld(label);
    ASSERT_NE(tld, nullptr) << label;
    EXPECT_TRUE(m.TldReachableAcross(*tld, {2019, 4, 1}, {2019, 5, 1}))
        << label;
  }
}

TEST(Evolution, RemovalDuringApril2019) {
  // Paper: the month started with 1,532 TLDs and one was deleted during it.
  const auto& m = Model();
  const int at_start = m.TldCountOn({2019, 4, 1});
  const int at_end = m.TldCountOn({2019, 4, 30});
  EXPECT_EQ(at_start - at_end, 1);
}

TEST(Evolution, CustomConfigRespected) {
  EvolutionConfig config;
  config.seed = 7;
  config.legacy_tld_count = 50;
  config.peak_tld_count = 100;
  config.rotating_tld_count = 2;
  const RootZoneModel m(config);
  EXPECT_EQ(m.TldCountOn({2013, 1, 1}), 50);
  int rotating = 0;
  for (const auto& tld : m.roster()) rotating += tld.rotating;
  EXPECT_EQ(rotating, 2);
}

}  // namespace
}  // namespace rootless::zone
