// Tests for the workload generator and the §2.2 classifier, including the
// calibration targets from the paper.
#include <gtest/gtest.h>

#include <set>

#include "traffic/classify.h"
#include "traffic/workload.h"
#include "zone/evolution.h"

namespace rootless::traffic {
namespace {

std::vector<std::string> RealTlds() {
  static const std::vector<std::string>* tlds = [] {
    const zone::RootZoneModel model;
    auto* out = new std::vector<std::string>();
    for (const auto* tld : model.ActiveTlds({2018, 4, 11})) {
      out->push_back(tld->label);
    }
    return out;
  }();
  return *tlds;
}

std::function<bool(const std::string&)> RealTldPredicate() {
  static const std::set<std::string>* tld_set = [] {
    auto* s = new std::set<std::string>();
    for (const auto& t : RealTlds()) s->insert(t);
    return s;
  }();
  return [](const std::string& label) { return tld_set->count(label) > 0; };
}

// A small-scale config for fast tests.
WorkloadConfig SmallConfig() {
  WorkloadConfig config;
  config.scale = 0.0001;  // 570K queries, 410 resolvers
  return config;
}

TEST(TldTable, InternsAndDedupes) {
  TldTable table;
  const TldId a = table.Intern("com");
  const TldId b = table.Intern("org");
  EXPECT_EQ(table.Intern("com"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(table.LabelOf(a), "com");
  EXPECT_EQ(table.size(), 2u);
}

TEST(Workload, DeterministicForSeed) {
  const auto a = GenerateDitlTrace(SmallConfig(), RealTlds());
  const auto b = GenerateDitlTrace(SmallConfig(), RealTlds());
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); i += 997) {
    EXPECT_EQ(a.events[i].time_sec, b.events[i].time_sec);
    EXPECT_EQ(a.events[i].resolver_id, b.events[i].resolver_id);
  }
}

TEST(Workload, EventsSortedWithinWindow) {
  const auto trace = GenerateDitlTrace(SmallConfig(), RealTlds());
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].time_sec, trace.events[i].time_sec);
    EXPECT_LT(trace.events[i].time_sec, 86400u);
  }
}

TEST(Workload, SummaryAccounting) {
  WorkloadSummary summary;
  const auto trace = GenerateDitlTrace(SmallConfig(), RealTlds(), &summary);
  EXPECT_EQ(summary.total_queries, trace.events.size());
  EXPECT_EQ(summary.total_queries, summary.bogus_queries +
                                       summary.valid_stream_queries +
                                       summary.new_tld_queries);
  EXPECT_GT(summary.bogus_only_resolvers, 0u);
}

TEST(Workload, BogusTldsAvoidRealLabels) {
  util::Rng rng(5);
  const auto is_real = RealTldPredicate();
  int real_hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (is_real(SampleBogusTld(rng))) ++real_hits;
  }
  // "test" and random collisions are possible but must be rare.
  EXPECT_LT(real_hits, 100);
}

// The headline §2.2 calibration: the generated day must classify close to
// the paper's published mix.
TEST(Workload, MatchesPaperTrafficMix) {
  WorkloadConfig config;
  config.scale = 0.0005;  // 2.85M queries — enough for tight fractions
  WorkloadSummary summary;
  const auto trace = GenerateDitlTrace(config, RealTlds(), &summary);
  const auto report = ClassifyTrace(trace, RealTldPredicate());

  EXPECT_EQ(report.total_queries, trace.events.size());

  // Paper: 61.0% bogus.
  EXPECT_NEAR(report.bogus_fraction(), 0.610, 0.02);
  // Paper: 38.4% ideal-cache spurious, 0.5% valid.
  EXPECT_NEAR(report.spurious_ideal_fraction(), 0.384, 0.02);
  EXPECT_NEAR(report.valid_ideal_fraction(), 0.005, 0.004);
  // Paper: 35.7% budget-model spurious, 3.3% valid.
  EXPECT_NEAR(report.spurious_budget_fraction(), 0.357, 0.02);
  EXPECT_NEAR(report.valid_budget_fraction(), 0.033, 0.012);
  // Paper: 723K of 4.1M resolvers bogus-only (17.6%).
  EXPECT_NEAR(static_cast<double>(report.resolvers_bogus_only) /
                  report.resolvers_total,
              0.176, 0.05);
}

TEST(Workload, NewTldShareMatchesPaper) {
  WorkloadConfig config;
  config.scale = 0.001;
  const auto trace = GenerateDitlTrace(config, RealTlds());
  const TldShare share = MeasureTldShare(trace, "llc");
  // Paper §5.3: <0.0002% of queries... our scaled trace has quantization,
  // so allow an order of magnitude while requiring "tiny".
  EXPECT_GT(share.queries, 0u);
  EXPECT_LT(share.query_fraction, 2e-5);
  EXPECT_LT(share.resolver_fraction, 0.002);  // paper: <0.1%
}

TEST(Classify, IdealModelCountsFirstQueryPerPairOnly) {
  Trace trace;
  const TldId com = trace.tlds.Intern("com");
  const TldId bogus = trace.tlds.Intern("bogus");
  // resolver 1 queries com three times, resolver 2 once, plus bogus.
  trace.events.push_back({100, 1, com});
  trace.events.push_back({200, 1, com});
  trace.events.push_back({50000, 1, com});
  trace.events.push_back({300, 2, com});
  trace.events.push_back({400, 2, bogus});

  const auto report = ClassifyTrace(
      trace, [](const std::string& label) { return label == "com"; });
  EXPECT_EQ(report.total_queries, 5u);
  EXPECT_EQ(report.bogus_tld_queries, 1u);
  EXPECT_EQ(report.valid_ideal, 2u);           // first per pair
  EXPECT_EQ(report.cache_spurious_ideal, 2u);  // repeats
  EXPECT_EQ(report.resolvers_total, 2u);
  EXPECT_EQ(report.resolvers_bogus_only, 0u);
}

TEST(Classify, BudgetModelAllowsOnePerWindow) {
  Trace trace;
  const TldId com = trace.tlds.Intern("com");
  // Three queries in one 15-min window, one in the next.
  trace.events.push_back({0, 1, com});
  trace.events.push_back({100, 1, com});
  trace.events.push_back({899, 1, com});
  trace.events.push_back({900, 1, com});

  const auto report =
      ClassifyTrace(trace, [](const std::string&) { return true; });
  EXPECT_EQ(report.valid_budget, 2u);
  EXPECT_EQ(report.cache_spurious_budget, 2u);
  // Ideal model: only the very first is valid.
  EXPECT_EQ(report.valid_ideal, 1u);
  EXPECT_EQ(report.cache_spurious_ideal, 3u);
}

TEST(Classify, BogusOnlyResolverDetection) {
  Trace trace;
  const TldId com = trace.tlds.Intern("com");
  const TldId junk = trace.tlds.Intern("junk");
  trace.events.push_back({1, 1, junk});
  trace.events.push_back({2, 1, junk});
  trace.events.push_back({3, 2, junk});
  trace.events.push_back({4, 2, com});

  const auto report = ClassifyTrace(
      trace, [](const std::string& label) { return label == "com"; });
  EXPECT_EQ(report.resolvers_total, 2u);
  EXPECT_EQ(report.resolvers_bogus_only, 1u);
}

TEST(Classify, CustomBudgetWindow) {
  Trace trace;
  const TldId com = trace.tlds.Intern("com");
  trace.events.push_back({0, 1, com});
  trace.events.push_back({30, 1, com});

  ClassifyOptions options;
  options.budget_window_sec = 60;
  const auto report =
      ClassifyTrace(trace, [](const std::string&) { return true; }, options);
  EXPECT_EQ(report.valid_budget, 1u);

  options.budget_window_sec = 20;
  const auto report2 =
      ClassifyTrace(trace, [](const std::string&) { return true; }, options);
  EXPECT_EQ(report2.valid_budget, 2u);
}

TEST(Classify, EmptyTrace) {
  Trace trace;
  const auto report =
      ClassifyTrace(trace, [](const std::string&) { return true; });
  EXPECT_EQ(report.total_queries, 0u);
  EXPECT_EQ(report.bogus_fraction(), 0.0);
}

TEST(MeasureTldShare, CountsQueriesAndResolvers) {
  Trace trace;
  const TldId com = trace.tlds.Intern("com");
  const TldId llc = trace.tlds.Intern("llc");
  trace.events.push_back({1, 1, com});
  trace.events.push_back({2, 2, llc});
  trace.events.push_back({3, 2, llc});
  trace.events.push_back({4, 3, com});

  const TldShare share = MeasureTldShare(trace, "llc");
  EXPECT_EQ(share.queries, 2u);
  EXPECT_EQ(share.resolvers, 1u);
  EXPECT_DOUBLE_EQ(share.query_fraction, 0.5);
  EXPECT_DOUBLE_EQ(share.resolver_fraction, 1.0 / 3.0);
}

}  // namespace
}  // namespace rootless::traffic

namespace rootless::traffic {
namespace {

TEST(TraceFile, RoundTrip) {
  WorkloadConfig config;
  config.scale = 0.00005;
  const Trace original = GenerateDitlTrace(config, RealTlds());
  const auto wire = SerializeTrace(original);
  auto decoded = DeserializeTrace(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  ASSERT_EQ(decoded->events.size(), original.events.size());
  ASSERT_EQ(decoded->tlds.size(), original.tlds.size());
  for (std::size_t i = 0; i < original.events.size(); i += 101) {
    EXPECT_EQ(decoded->events[i].time_sec, original.events[i].time_sec);
    EXPECT_EQ(decoded->events[i].resolver_id, original.events[i].resolver_id);
    EXPECT_EQ(decoded->tlds.LabelOf(decoded->events[i].tld),
              original.tlds.LabelOf(original.events[i].tld));
  }
  // Classifying the round-tripped trace gives identical results.
  const auto a = ClassifyTrace(original, RealTldPredicate());
  const auto b = ClassifyTrace(*decoded, RealTldPredicate());
  EXPECT_EQ(a.bogus_tld_queries, b.bogus_tld_queries);
  EXPECT_EQ(a.valid_budget, b.valid_budget);
}

TEST(TraceFile, DeltaTimestampsCompress) {
  WorkloadConfig config;
  config.scale = 0.00005;
  const Trace trace = GenerateDitlTrace(config, RealTlds());
  const auto wire = SerializeTrace(trace);
  // Well under 8 bytes/event thanks to varint + delta encoding.
  EXPECT_LT(wire.size(), trace.events.size() * 8);
}

TEST(TraceFile, RejectsCorruption) {
  EXPECT_FALSE(DeserializeTrace(util::Bytes{1, 2, 3}).ok());
  WorkloadConfig config;
  config.scale = 0.00002;
  auto wire = SerializeTrace(GenerateDitlTrace(config, RealTlds()));
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(DeserializeTrace(wire).ok());
}

}  // namespace
}  // namespace rootless::traffic
