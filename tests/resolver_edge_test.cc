// Edge-case coverage for the recursive resolver: glueless delegations,
// TTL expiry, zone updates, root-selection convergence, and id handling.
#include <gtest/gtest.h>

#include <memory>

#include "resolver/recursive.h"
#include "rootsrv/fleet.h"
#include "rootsrv/tld_farm.h"
#include "topo/deployment.h"
#include "topo/topology.h"
#include "zone/evolution.h"

namespace rootless::resolver {
namespace {

using dns::Name;
using dns::RRClass;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

// A tiny hand-built root zone: one TLD with glue, one without (glueless
// delegation — the nameserver name lives out of bailiwick).
std::shared_ptr<zone::Zone> TinyRoot() {
  auto z = std::make_shared<zone::Zone>();
  dns::SoaData soa;
  soa.mname = N("a.root-servers.net.");
  soa.serial = 2019010100;
  soa.minimum = 86400;
  EXPECT_TRUE(z->AddRecord({Name(), RRType::kSOA, RRClass::kIN, 86400, soa})
                  .ok());
  EXPECT_TRUE(z->AddRecord({N("glued."), RRType::kNS, RRClass::kIN, 172800,
                            dns::NsData{N("ns1.nic.glued.")}})
                  .ok());
  EXPECT_TRUE(z->AddRecord({N("ns1.nic.glued."), RRType::kA, RRClass::kIN,
                            172800,
                            dns::AData{*dns::Ipv4::Parse("192.0.2.1")}})
                  .ok());
  // Glueless: NS target under another TLD, no A record in the root zone.
  EXPECT_TRUE(z->AddRecord({N("glueless."), RRType::kNS, RRClass::kIN, 172800,
                            dns::NsData{N("ns.operator.glued.")}})
                  .ok());
  return z;
}

struct Env {
  sim::Simulator sim;
  sim::Network net{sim, 77};
  topo::Topology registry;
  std::shared_ptr<zone::Zone> root_zone = TinyRoot();
  zone::SnapshotPtr root_snapshot = zone::ZoneSnapshot::Build(*root_zone);
  std::unique_ptr<rootsrv::AuthServer> root;
  std::unique_ptr<rootsrv::TldFarm> farm;

  Env() {
    net.set_latency_fn(registry.LatencyFn());
    root = std::make_unique<rootsrv::AuthServer>(net, root_snapshot);
    registry.PlaceNode(root->node(), {40, -74});
    farm = std::make_unique<rootsrv::TldFarm>(net, registry, *root_snapshot,
                                              3);
  }

  std::unique_ptr<RecursiveResolver> MakeResolver(RootMode mode) {
    ResolverConfig config;
    config.mode = mode;
    config.seed = 2;
    auto r = std::make_unique<RecursiveResolver>(
        sim, net,
        RecursiveResolver::Options{config, topo::GeoPoint{48, 2}, nullptr,
                                   &registry});
    r->SetTldFarm(farm.get());
    if (mode == RootMode::kLoopbackAuth) {
      r->SetLoopbackNode(root->node());
      r->SetLocalZone(root_snapshot);
    } else {
      r->SetLocalZone(root_snapshot);
    }
    return r;
  }

  ResolutionResult ResolveSync(RecursiveResolver& r, std::string_view name) {
    ResolutionResult out;
    bool done = false;
    r.Resolve(N(name), RRType::kA, [&](const ResolutionResult& result) {
      out = result;
      done = true;
    });
    sim.Run();
    EXPECT_TRUE(done);
    return out;
  }
};

TEST(ResolverEdge, GluelessDelegationCostsAnExtraHop) {
  Env env;
  auto r = env.MakeResolver(RootMode::kOnDemandZoneFile);
  const auto glued = env.ResolveSync(*r, "www.example.glued.");
  ASSERT_EQ(glued.rcode, dns::RCode::kNoError);

  auto r2 = env.MakeResolver(RootMode::kOnDemandZoneFile);
  const auto glueless = env.ResolveSync(*r2, "www.example.glueless.");
  ASSERT_EQ(glueless.rcode, dns::RCode::kNoError);
  // The glueless path records the extra NS-resolution transaction.
  EXPECT_GT(glueless.transactions, glued.transactions);
}

TEST(ResolverEdge, ReferralExpiryForcesRootReconsultation) {
  Env env;
  auto r = env.MakeResolver(RootMode::kOnDemandZoneFile);
  (void)env.ResolveSync(*r, "a.example.glued.");
  EXPECT_EQ(r->stats().local_root_lookups, 1u);

  // Within TTL: referral cached, no new local lookup.
  (void)env.ResolveSync(*r, "b.example.glued.");
  EXPECT_EQ(r->stats().local_root_lookups, 1u);

  // Jump past the 2-day TTL: the referral has expired.
  env.sim.RunUntil(env.sim.now() + 3 * sim::kDay);
  (void)env.ResolveSync(*r, "c.example.glued.");
  EXPECT_EQ(r->stats().local_root_lookups, 2u);
}

TEST(ResolverEdge, ZoneUpdateChangesAnswers) {
  Env env;
  auto r = env.MakeResolver(RootMode::kOnDemandZoneFile);
  EXPECT_EQ(env.ResolveSync(*r, "x.newtld.").rcode, dns::RCode::kNXDomain);

  // Publish a new zone version with the TLD added.
  auto updated = std::make_shared<zone::Zone>(*env.root_zone);
  ASSERT_TRUE(updated
                  ->AddRecord({N("newtld."), RRType::kNS, RRClass::kIN, 172800,
                               dns::NsData{N("ns1.nic.newtld.")}})
                  .ok());
  ASSERT_TRUE(updated
                  ->AddRecord({N("ns1.nic.newtld."), RRType::kA, RRClass::kIN,
                               172800,
                               dns::AData{*dns::Ipv4::Parse("192.0.2.99")}})
                  .ok());
  auto updated_snapshot = zone::ZoneSnapshot::Build(*updated);
  r->SetLocalZone(updated_snapshot);
  env.farm->RefreshAddresses(*updated_snapshot);
  // Note: negative cache would keep answering NXDOMAIN until its TTL; a new
  // name avoids that here (the TTL interplay is tested separately).
  env.sim.RunUntil(env.sim.now() + 2 * sim::kHour);
  EXPECT_EQ(env.ResolveSync(*r, "y.newtld.").rcode, dns::RCode::kNoError);
}

TEST(ResolverEdge, CaseInsensitiveReferralReuse) {
  Env env;
  auto r = env.MakeResolver(RootMode::kOnDemandZoneFile);
  (void)env.ResolveSync(*r, "www.example.glued.");
  EXPECT_EQ(r->stats().local_root_lookups, 1u);
  (void)env.ResolveSync(*r, "WWW.OTHER.GLUED.");
  // Same TLD, different case: referral reused.
  EXPECT_EQ(r->stats().local_root_lookups, 1u);
}

TEST(ResolverEdge, LoopbackNxdomainPath) {
  Env env;
  auto r = env.MakeResolver(RootMode::kLoopbackAuth);
  const auto result = env.ResolveSync(*r, "device.home.");
  EXPECT_EQ(result.rcode, dns::RCode::kNXDomain);
  EXPECT_EQ(env.root->stats().nxdomain, 1u);
  // Negative-cached afterwards.
  const auto again = env.ResolveSync(*r, "other.home.");
  EXPECT_EQ(again.rcode, dns::RCode::kNXDomain);
  EXPECT_EQ(env.root->stats().nxdomain, 1u);
}

TEST(ResolverEdge, SelectorConvergesOnNearbyLetter) {
  sim::Simulator sim;
  sim::Network net(sim, 7);
  topo::Topology registry;
  net.set_latency_fn(registry.LatencyFn());
  const zone::RootZoneModel model;
  auto root_zone =
      std::make_shared<zone::Zone>(model.Snapshot({2018, 4, 11}));
  rootsrv::RootServerFleet fleet(net, registry, root_zone);
  rootsrv::TldFarm farm(net, registry, *root_zone, 3);

  ResolverConfig config;
  config.mode = RootMode::kRootServers;
  config.seed = 10;
  const topo::GeoPoint where{48.85, 2.35};
  RecursiveResolver r(sim, net, {config, where, nullptr, &registry});
  r.SetTldFarm(&farm);
  r.SetRootFleet(&fleet);

  // Force many root consultations with distinct TLD-looking bogus names.
  for (int i = 0; i < 60; ++i) {
    r.Resolve(N("x.bogus" + std::to_string(i) + "."), RRType::kA,
              [](const auto&) {});
    sim.Run();
  }
  // After probing, every letter has an estimate and the resolver's current
  // preference must be among the genuinely fastest.
  const auto& selector = r.root_selector();
  sim::SimTime best = 0;
  bool first = true;
  for (char letter = 'a'; letter <= 'm'; ++letter) {
    ASSERT_TRUE(selector.probed(letter)) << letter;
    if (first || selector.srtt(letter) < best) {
      best = selector.srtt(letter);
      first = false;
    }
  }
  // Large anycast letters should give Paris sub-25ms SRTT.
  EXPECT_LT(best, 25 * sim::kMillisecond);
}

TEST(ResolverEdge, ManyConcurrentResolutions) {
  Env env;
  auto r = env.MakeResolver(RootMode::kOnDemandZoneFile);
  int completed = 0;
  for (int i = 0; i < 500; ++i) {
    r->Resolve(N("h" + std::to_string(i) + ".example.glued."), RRType::kA,
               [&](const ResolutionResult& result) {
                 EXPECT_EQ(result.rcode, dns::RCode::kNoError);
                 ++completed;
               });
  }
  env.sim.Run();
  EXPECT_EQ(completed, 500);
}

}  // namespace
}  // namespace rootless::resolver

namespace rootless::resolver {
namespace {

TEST(ResolverEdge, EncryptedTransportPaysHandshakeOnce) {
  Env env;
  ResolverConfig config;
  config.mode = RootMode::kLoopbackAuth;
  config.encrypted_transport = true;
  config.seed = 3;
  RecursiveResolver r(env.sim, env.net,
                      {config, topo::GeoPoint{48, 2}, nullptr, &env.registry});
  r.SetTldFarm(env.farm.get());
  r.SetLoopbackNode(env.root->node());
  r.SetLocalZone(env.root_snapshot);

  auto resolve = [&](std::string_view name) {
    ResolutionResult out;
    r.Resolve(*dns::Name::Parse(name), RRType::kA,
              [&](const ResolutionResult& result) { out = result; });
    env.sim.Run();
    return out;
  };
  const auto first = resolve("a.example.glued.");
  EXPECT_EQ(first.rcode, dns::RCode::kNoError);
  const auto handshakes_after_first = r.stats().handshakes;
  EXPECT_GE(handshakes_after_first, 2u);  // root session + TLD session

  // Same servers again: sessions reused, latency strictly lower.
  const auto second = resolve("b.example.glued.");
  EXPECT_EQ(second.rcode, dns::RCode::kNoError);
  EXPECT_EQ(r.stats().handshakes, handshakes_after_first);
  EXPECT_LT(second.latency, first.latency);
}

TEST(ResolverEdge, EncryptedTransportSlowerThanUdpWhenCold) {
  Env env;
  auto MakeWith = [&](bool encrypted) {
    ResolverConfig config;
    config.mode = RootMode::kOnDemandZoneFile;
    config.encrypted_transport = encrypted;
    config.seed = 5;
    auto r = std::make_unique<RecursiveResolver>(
        env.sim, env.net,
        RecursiveResolver::Options{config, topo::GeoPoint{48, 2}, nullptr,
                                   &env.registry});
    r->SetTldFarm(env.farm.get());
    r->SetLocalZone(env.root_snapshot);
    return r;
  };
  auto udp = MakeWith(false);
  auto tls = MakeWith(true);
  const auto udp_result = env.ResolveSync(*udp, "x.example.glued.");
  const auto tls_result = env.ResolveSync(*tls, "x.example.glued.");
  EXPECT_EQ(udp_result.rcode, dns::RCode::kNoError);
  EXPECT_EQ(tls_result.rcode, dns::RCode::kNoError);
  EXPECT_GT(tls_result.latency, udp_result.latency);
}

}  // namespace
}  // namespace rootless::resolver
