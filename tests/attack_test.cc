// Attack-layer tests: the response-rate-limiter (unit, stage, and
// concurrency), answer-cache behaviour under water-torture churn, NXNS
// glueless-referral chasing, and bit-identical sharded replay of a
// window-scheduled attack overlapping a fault outage.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "resolver/recursive.h"
#include "rootsrv/auth_server.h"
#include "rootsrv/rrl.h"
#include "rootsrv/tld_farm.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "traffic/attack.h"
#include "traffic/replay.h"
#include "zone/zone_snapshot.h"

namespace rootless {
namespace {

using dns::Name;
using dns::RRType;
using rootsrv::ResponseRateLimiter;
using rootsrv::RrlConfig;

Name N(std::string_view s) { return *Name::Parse(s); }

// Minimal root zone: SOA + one delegation with glue.
std::shared_ptr<zone::Zone> TestZone() {
  auto z = std::make_shared<zone::Zone>();
  dns::SoaData soa;
  soa.mname = N("a.root-servers.net.");
  soa.serial = 2019060700;
  EXPECT_TRUE(
      z->AddRecord({Name(), RRType::kSOA, dns::RRClass::kIN, 86400, soa})
          .ok());
  EXPECT_TRUE(z->AddRecord({N("com."), RRType::kNS, dns::RRClass::kIN, 172800,
                            dns::NsData{N("ns.nic.com.")}})
                  .ok());
  EXPECT_TRUE(z->AddRecord({N("ns.nic.com."), RRType::kA, dns::RRClass::kIN,
                            172800,
                            dns::AData{*dns::Ipv4::Parse("192.0.2.1")}})
                  .ok());
  return z;
}

// ------------------------------------------------------------ limiter unit

TEST(RrlLimiter, BucketStartsFullThenSlipsAndDrops) {
  ResponseRateLimiter limiter({.enabled = true, .rate = 10, .burst = 3,
                               .slip = 2, .buckets = 16});
  using D = ResponseRateLimiter::Decision;
  // First contact grants the full burst, all at the same instant.
  for (int i = 0; i < 3; ++i) EXPECT_EQ(limiter.Admit(42, 0), D::kAllow);
  // Dry bucket: every slip-th limited query slips, the rest drop.
  EXPECT_EQ(limiter.Admit(42, 0), D::kSlip);
  EXPECT_EQ(limiter.Admit(42, 0), D::kDrop);
  EXPECT_EQ(limiter.Admit(42, 0), D::kSlip);
  EXPECT_EQ(limiter.Admit(42, 0), D::kDrop);
  EXPECT_EQ(limiter.allowed(), 3u);
  EXPECT_EQ(limiter.slipped(), 2u);
  EXPECT_EQ(limiter.dropped(), 2u);
  // A different client has its own budget.
  EXPECT_EQ(limiter.Admit(7, 0), D::kAllow);
}

TEST(RrlLimiter, RefillsAtExactIntegerRate) {
  ResponseRateLimiter limiter({.enabled = true, .rate = 10, .burst = 2,
                               .slip = 0, .buckets = 16});
  using D = ResponseRateLimiter::Decision;
  EXPECT_EQ(limiter.Admit(1, 0), D::kAllow);
  EXPECT_EQ(limiter.Admit(1, 0), D::kAllow);
  EXPECT_EQ(limiter.Admit(1, 0), D::kDrop);  // slip=0: pure drop
  // 10/s: 99 ms buys nothing, 100 ms buys exactly one token.
  EXPECT_EQ(limiter.Admit(1, 99'000), D::kDrop);
  EXPECT_EQ(limiter.Admit(1, 100'000), D::kAllow);
  EXPECT_EQ(limiter.Admit(1, 100'000), D::kDrop);
  // Refill is capped at the burst: a long quiet period grants 2, not 10.
  EXPECT_EQ(limiter.Admit(1, 1'100'000), D::kAllow);
  EXPECT_EQ(limiter.Admit(1, 1'100'000), D::kAllow);
  EXPECT_EQ(limiter.Admit(1, 1'100'000), D::kDrop);
}

TEST(RrlLimiter, ZeroRateAnswersNothing) {
  ResponseRateLimiter limiter({.enabled = true, .rate = 0, .slip = 1,
                               .buckets = 16});
  using D = ResponseRateLimiter::Decision;
  // slip=1: every limited query slips (pure-truncation mode).
  EXPECT_EQ(limiter.Admit(9, 0), D::kSlip);
  EXPECT_EQ(limiter.Admit(9, 1'000'000), D::kSlip);
  EXPECT_EQ(limiter.allowed(), 0u);
}

// ------------------------------------------------------- limiter under TSan

TEST(RrlConcurrency, SharedBucketsStayExactUnderContention) {
  // Every thread hammers the SAME client — one atomic bucket word under
  // maximal contention — with the clock pinned at 0 so there is no refill:
  // the CAS loop must hand out *exactly* the 100-token burst, never more,
  // never fewer, and every admit must be accounted exactly once.
  ResponseRateLimiter limiter({.enabled = true, .rate = 1000, .burst = 100,
                               .slip = 2, .buckets = 64});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&limiter]() {
      for (int i = 0; i < kPerThread; ++i) limiter.Admit(42, 0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(limiter.allowed(), 100u);
  EXPECT_EQ(limiter.allowed() + limiter.slipped() + limiter.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------- stage level

TEST(RrlStage, UdpFloodSlipsTruncatedRefusedThenDrops) {
  rootsrv::AuthServer::Options options;
  options.rrl = {.enabled = true, .rate = 1, .burst = 2, .slip = 2,
                 .buckets = 16};
  options.clock = []() { return std::uint64_t{0}; };  // frozen: no refill
  rootsrv::AuthServer server(nullptr, zone::ZoneSnapshot::Build(*TestZone()),
                             options);
  const auto query = dns::MakeQuery(0x77, N("www.example.com."), RRType::kA);

  const auto first =
      server.AnswerWireFrom(query, rootsrv::Channel::kUdp, /*client=*/5);
  const auto second =
      server.AnswerWireFrom(query, rootsrv::Channel::kUdp, /*client=*/5);
  ASSERT_GE(first.size(), 12u);
  EXPECT_EQ(first, second);  // burst: both answered normally

  // Third query trips the limit and slips: minimal REFUSED with TC set so
  // an honest client retries over TCP.
  const auto slip =
      server.AnswerWireFrom(query, rootsrv::Channel::kUdp, /*client=*/5);
  ASSERT_GE(slip.size(), 12u);
  EXPECT_TRUE(slip[2] & 0x02);  // TC
  EXPECT_EQ(slip[3] & 0x0F, static_cast<int>(dns::RCode::kRefused));
  // Fourth drops: silence.
  const auto drop =
      server.AnswerWireFrom(query, rootsrv::Channel::kUdp, /*client=*/5);
  EXPECT_TRUE(drop.empty());

  const auto ps = server.pipeline_stats();
  EXPECT_EQ(ps.rrl_checked, 4u);
  EXPECT_EQ(ps.rrl_slipped, 1u);
  EXPECT_EQ(ps.rrl_dropped, 1u);

  // Another client is untouched; TCP is exempt even for the limited one.
  EXPECT_FALSE(
      server.AnswerWireFrom(query, rootsrv::Channel::kUdp, /*client=*/6)
          .empty());
  EXPECT_FALSE(
      server.AnswerWireFrom(query, rootsrv::Channel::kTcp, /*client=*/5)
          .empty());
}

TEST(RrlStage, DisabledLimiterIsByteIdenticalToNoLimiter) {
  const auto snapshot = zone::ZoneSnapshot::Build(*TestZone());
  rootsrv::AuthServer plain(nullptr, snapshot, {});
  rootsrv::AuthServer::Options options;
  options.rrl.enabled = false;  // the default; spelled out for the parity
  rootsrv::AuthServer configured(nullptr, snapshot, options);
  for (int i = 0; i < 32; ++i) {
    const auto query = dns::MakeQuery(
        static_cast<std::uint16_t>(i),
        N("h" + std::to_string(i) + ".example.com."), RRType::kA);
    EXPECT_EQ(plain.AnswerWireFrom(query, rootsrv::Channel::kUdp, 99),
              configured.AnswerWireFrom(query, rootsrv::Channel::kUdp, 99));
  }
  EXPECT_EQ(configured.rrl(), nullptr);
  EXPECT_EQ(configured.pipeline_stats().rrl_checked, 0u);
}

// ------------------------------------------- answer cache under water-torture

TEST(AttackCacheChurn, BoundedEvictingAndLegitHitsSurvive) {
  rootsrv::AuthServer::Options options;
  options.answer_cache_entries = 64;
  rootsrv::AuthServer server(nullptr, zone::ZoneSnapshot::Build(*TestZone()),
                             options);
  const auto legit = dns::MakeQuery(1, N("www.example.com."), RRType::kA);

  // 1000 churn queries, every 8th interleaved with the same legit query: the
  // random-subdomain flood inserts a unique NXDOMAIN packet every time, the
  // legit entry gets evicted roughly every 64 insertions and re-cached on
  // the following miss.
  std::uint64_t legit_sent = 0;
  for (int i = 0; i < 1000; ++i) {
    if (i % 8 == 0) {
      ++legit_sent;
      EXPECT_FALSE(
          server.AnswerWire(legit, rootsrv::Channel::kUdp).empty());
    }
    const auto flood = dns::MakeQuery(
        static_cast<std::uint16_t>(i),
        N("f" + std::to_string(i) + ".junk" + std::to_string(i) + "."),
        RRType::kA);
    EXPECT_FALSE(server.AnswerWire(flood, rootsrv::Channel::kUdp).empty());
    ASSERT_LE(server.answer_cache_size(), 64u);  // never exceeds capacity
  }

  const auto ps = server.pipeline_stats();
  const auto stats = server.stats();
  EXPECT_EQ(server.answer_cache_size(), 64u);
  EXPECT_GT(ps.cache_evictions, 0u);
  EXPECT_EQ(ps.cache_insertions - ps.cache_evictions, 64u);
  // Unique flood names never hit, so every cache hit is the legit query's;
  // FIFO eviction costs it roughly one miss in nine.
  EXPECT_EQ(stats.cache_hits, ps.cache_probes - ps.cache_insertions);
  EXPECT_GE(stats.cache_hits, legit_sent / 2);
  EXPECT_LT(stats.cache_hits, legit_sent);
}

// ------------------------------------------------------------- nxns chase

TEST(AttackNxnsChase, MaliciousDelegationAmplifiesRootLookups) {
  for (const int chase : {0, 4}) {
    sim::Simulator sim;
    sim::Network net(sim, 3);
    topo::Topology geo;
    net.set_latency_fn(geo.LatencyFn());
    auto zone = TestZone();
    const auto snapshot = zone::ZoneSnapshot::Build(*zone);
    rootsrv::TldFarm farm(net, geo, *snapshot, 5);
    farm.SetMaliciousDelegation("com", 4);

    resolver::ResolverConfig config;
    config.mode = resolver::RootMode::kOnDemandZoneFile;
    config.seed = 9;
    config.max_glueless_chase = chase;
    resolver::RecursiveResolver r(sim, net, {config, {48.85, 2.35}});
    geo.PlaceNode(r.node(), {48.85, 2.35});
    r.SetTldFarm(&farm);
    r.SetLocalZone(snapshot);

    resolver::ResolutionResult result;
    r.Resolve(N("victim.example.com."), RRType::kA,
              [&result](const resolver::ResolutionResult& rr) {
                result = rr;
              });
    sim.Run();

    // Both arms fail the lookup (the referral is unusable either way)...
    EXPECT_EQ(result.rcode, dns::RCode::kServFail);
    EXPECT_GE(farm.malicious_referrals(), 1u);
    const auto stats = r.stats();
    if (chase == 0) {
      // ...but the hardened default chases nothing: one local-root lookup.
      EXPECT_EQ(stats.glueless_referrals, 0u);
      EXPECT_EQ(stats.chase_queries, 0u);
      EXPECT_EQ(stats.local_root_lookups, 1u);
    } else {
      // The vulnerable resolver fans one query into `fanout` extra root-side
      // lookups — the NXNS amplification factor.
      EXPECT_EQ(stats.glueless_referrals, 1u);
      EXPECT_EQ(stats.chase_queries, 4u);
      EXPECT_EQ(stats.local_root_lookups, 1u + 4u);
    }
  }
}

// --------------------------------------------- sharded replay determinism

std::string Fingerprint(const traffic::ReplayOutcome& o) {
  std::ostringstream out;
  const auto& t = o.tally;
  out << t.total_queries << '|' << t.bogus_tld_queries << '|'
      << t.attack_queries << '|' << t.valid_ideal << '|'
      << t.cache_spurious_ideal << '|' << t.new_tld_queries << '\n';
  const auto& r = o.resolver;
  out << r.resolutions << '|' << r.root_transactions << '|'
      << r.local_root_lookups << '|' << r.nxdomain << '|' << r.timeouts
      << '|' << r.failures << '|' << r.retries << '|'
      << r.glueless_referrals << '|' << r.chase_queries << '\n';
  out << o.replayed << '|' << o.attack_queries << '|' << o.cache_hits << '|'
      << o.cache_lookups << '\n';
  out << obs::RenderMetricsTable(*o.metrics, /*aggregate_instances=*/false);
  return out.str();
}

TEST(AttackReplayDeterminism, WindowedFloodOverOutageBitIdentical) {
  traffic::ReplayOptions options;
  options.workload.seed = 4242;
  options.workload.scale = 0.00005;
  options.num_shards = 4;
  options.num_threads = 1;

  // A water-torture window in trace seconds (hours 1-4 of the day)...
  options.attack.kind = traffic::AttackKind::kWaterTorture;
  options.attack.attackers = 12;
  options.attack.rate = 40;
  options.attack.windows.push_back({.node = 0, .from = 3600, .to = 14400});
  // ...overlapping a burst outage of every shard's first farm node in sim
  // time (trace seconds / time_compression; 6s..12s covers trace 3600..7200).
  options.fault_plan.Outage(0, 6 * sim::kSecond, 12 * sim::kSecond);

  const traffic::ReplayOutcome serial = traffic::RunShardedReplay(options);
  ASSERT_GT(serial.tally.attack_queries, 0u);
  EXPECT_EQ(serial.attack_queries, serial.tally.attack_queries);
  // Attack queries ride inside the replayed total, not beside it.
  EXPECT_EQ(serial.replayed, serial.tally.total_queries);
  EXPECT_GT(serial.tally.total_queries, serial.tally.attack_queries);

  // Two more passes: multi-threaded, then multi-threaded again — every
  // merged number and metrics row must be bit-identical.
  const std::string reference = Fingerprint(serial);
  options.num_threads = 4;
  EXPECT_EQ(Fingerprint(traffic::RunShardedReplay(options)), reference);
  EXPECT_EQ(Fingerprint(traffic::RunShardedReplay(options)), reference);
}

TEST(AttackReplayDeterminism, InactivePlanMatchesBenignReplay) {
  traffic::ReplayOptions benign;
  benign.workload.seed = 777;
  benign.workload.scale = 0.00002;
  benign.num_shards = 2;
  benign.num_threads = 2;

  traffic::ReplayOptions inert = benign;
  inert.attack.kind = traffic::AttackKind::kWaterTorture;
  inert.attack.attackers = 0;  // inactive: must change nothing
  const auto a = traffic::RunShardedReplay(benign);
  const auto b = traffic::RunShardedReplay(inert);
  EXPECT_EQ(a.tally.attack_queries, 0u);
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
}

}  // namespace
}  // namespace rootless
