// Tests for the AXFR-style zone transfer protocol over the simulated
// network, including lossy-path retransmission and serial short-circuits.
#include <gtest/gtest.h>

#include <memory>

#include "distrib/axfr.h"
#include "topo/topology.h"
#include "zone/evolution.h"

namespace rootless::distrib {
namespace {

struct Env {
  sim::Simulator sim;
  sim::Network net{sim, 55};
  topo::Topology registry;
  zone::RootZoneModel model{[] {
    zone::EvolutionConfig config;
    config.seed = 8;
    config.legacy_tld_count = 60;
    config.peak_tld_count = 120;
    return config;
  }()};
  zone::SnapshotPtr current;
  std::unique_ptr<AxfrServer> server;
  std::unique_ptr<AxfrClient> client;

  Env() {
    net.set_latency_fn(registry.LatencyFn());
    current = zone::ZoneSnapshot::Build(model.Snapshot({2019, 6, 7}));
    server = std::make_unique<AxfrServer>(net, [this]() { return current; });
    client = std::make_unique<AxfrClient>(sim, net, AxfrClient::Options{});
    registry.PlaceNode(server->node(), {40, -74});
    registry.PlaceNode(client->node(), {48, 2});
  }

  util::Result<zone::SnapshotPtr> FetchSync(std::uint32_t have_serial) {
    util::Result<zone::SnapshotPtr> out = util::Error("not completed");
    client->Fetch(server->node(), have_serial,
                  [&](util::Result<zone::SnapshotPtr> result) {
                    out = std::move(result);
                  });
    sim.RunUntil(sim.now() + 10 * sim::kMinute);
    return out;
  }
};

TEST(Axfr, TransfersZoneExactly) {
  Env env;
  auto result = env.FetchSync(0);
  ASSERT_TRUE(result.ok()) << result.error().message();
  ASSERT_NE(*result, nullptr);
  EXPECT_TRUE((*result)->SameContent(*env.current));
  EXPECT_EQ(env.client->stats().transfers, 1u);
  EXPECT_EQ(env.client->stats().failures, 0u);
  EXPECT_GT(env.server->stats().chunks_sent, 10u);
}

TEST(Axfr, UpToDateShortCircuits) {
  Env env;
  auto result = env.FetchSync(env.current->Serial());
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_EQ(*result, nullptr);  // keep the copy you have
  EXPECT_EQ(env.client->stats().uptodate, 1u);
  EXPECT_EQ(env.server->stats().uptodate, 1u);
  EXPECT_EQ(env.server->stats().chunks_sent, 0u);
}

TEST(Axfr, SurvivesLossyPath) {
  Env env;
  env.net.set_loss_rate(0.10);
  auto result = env.FetchSync(0);
  ASSERT_TRUE(result.ok()) << result.error().message();
  ASSERT_NE(*result, nullptr);
  EXPECT_TRUE((*result)->SameContent(*env.current));
  // Loss must have forced retransmissions, and they must have healed.
  EXPECT_GT(env.client->stats().retransmits, 0u);
  EXPECT_EQ(env.client->stats().failures, 0u);
}

TEST(Axfr, TotalOutageFailsCleanly) {
  Env env;
  env.net.set_loss_rate(1.0);
  auto result = env.FetchSync(0);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(env.client->stats().failures, 1u);
}

TEST(Axfr, ServerTracksZoneUpdates) {
  Env env;
  auto first = env.FetchSync(0);
  ASSERT_TRUE(first.ok());
  const std::uint32_t serial1 = (*first)->Serial();

  // Publish a newer zone; the next transfer must deliver it.
  env.current = zone::ZoneSnapshot::Build(env.model.Snapshot({2019, 6, 9}));
  auto second = env.FetchSync(serial1);
  ASSERT_TRUE(second.ok()) << second.error().message();
  ASSERT_NE(*second, nullptr);
  EXPECT_EQ((*second)->Serial(), env.current->Serial());
  EXPECT_NE((*second)->Serial(), serial1);
}

TEST(Axfr, BackToBackTransfers) {
  Env env;
  for (int i = 0; i < 3; ++i) {
    auto result = env.FetchSync(0);
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_TRUE((*result)->SameContent(*env.current));
  }
  EXPECT_EQ(env.client->stats().transfers, 3u);
}

TEST(Axfr, IgnoresGarbageDatagrams) {
  Env env;
  const sim::NodeId stranger = env.net.AddNode(nullptr);
  env.net.Send(stranger, env.server->node(), util::Bytes{1, 2, 3});
  env.net.Send(stranger, env.client->node(), util::Bytes{4, 5, 6});
  env.sim.Run();
  // And a normal transfer still works afterwards.
  auto result = env.FetchSync(0);
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace rootless::distrib
