// Socket front-end tests: the epoll event loop, and end-to-end parity — the
// byte streams served through real UDP/TCP sockets must be identical to what
// the same AuthServer configuration produces in the simulator, for the whole
// replay-shaped query corpus including malformed input and TC truncation.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "crypto/dnssec.h"
#include "dns/message.h"
#include "net/axfr_client.h"
#include "net/event_loop.h"
#include "net/frontend.h"
#include "rootsrv/auth_server.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "zone/evolution.h"
#include "zone/sign.h"
#include "zone/zone_snapshot.h"

namespace rootless::net {
namespace {

using dns::Name;
using dns::RRType;

Name N(std::string_view s) { return *Name::Parse(s); }

dns::Message WithOpt(dns::Message query, std::uint16_t payload) {
  query.additional.push_back({Name(), RRType::kOPT,
                              static_cast<dns::RRClass>(payload), 0,
                              dns::RawData{}});
  return query;
}

// A small signed root zone with one oversized delegation ("bigtld.", 30 NS +
// glue) whose referral is guaranteed past 512 bytes, so the corpus always
// exercises TC truncation.
zone::SnapshotPtr TestSnapshot(const util::CivilDate& date) {
  zone::EvolutionConfig config;
  config.legacy_tld_count = 80;
  config.peak_tld_count = 100;
  const zone::RootZoneModel model(config);
  zone::Zone root = model.Snapshot(date);
  for (int i = 0; i < 30; ++i) {
    const Name ns = N("ns" + std::to_string(i) + ".bigtld.");
    EXPECT_TRUE(root.AddRecord({N("bigtld."), RRType::kNS, dns::RRClass::kIN,
                                172800, dns::NsData{ns}})
                    .ok());
    EXPECT_TRUE(root.AddRecord({ns, RRType::kA, dns::RRClass::kIN, 172800,
                                dns::AData{*dns::Ipv4::Parse("198.51.100.9")}})
                    .ok());
  }
  util::Rng rng(0xD15EC);
  const crypto::SigningKey zsk = crypto::GenerateKey(crypto::kZskFlags, rng);
  return zone::ZoneSnapshot::Build(zone::SignZone(root, zsk, {0, 0xFFFFFFFF}));
}

// The exact AuthServer configuration the frontend gives its workers, with
// the answer cache off so parity also checks cached vs uncached serving.
rootsrv::AuthServer::Options ReferenceOptions(const FrontendOptions& fo) {
  rootsrv::AuthServer::Options options;
  options.include_dnssec = fo.include_dnssec;
  options.edns = fo.edns;
  options.respond_formerr_to_garbage = true;
  options.answer_cache_entries = 0;
  return options;
}

// Blocking loopback UDP client.
class UdpClient {
 public:
  explicit UdpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  ~UdpClient() { ::close(fd_); }

  void Send(const util::Bytes& payload) {
    ::send(fd_, payload.data(), payload.size(), 0);
  }
  std::optional<util::Bytes> Recv(int timeout_ms) {
    timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::uint8_t buffer[8192];
    const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (got < 0) return std::nullopt;
    return util::Bytes(buffer, buffer + got);
  }

 private:
  int fd_ = -1;
};

// Blocking loopback TCP client speaking 2-byte length-prefixed DNS frames.
class TcpClient {
 public:
  explicit TcpClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0;
  }
  ~TcpClient() { ::close(fd_); }

  bool connected() const { return connected_; }

  void SendFrame(const util::Bytes& payload) {
    util::Bytes frame;
    frame.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
    frame.push_back(static_cast<std::uint8_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, 0);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  std::optional<util::Bytes> RecvFrame() {
    std::uint8_t len_bytes[2];
    if (!ReadAll(len_bytes, 2)) return std::nullopt;
    const std::size_t len = static_cast<std::size_t>(len_bytes[0]) << 8 |
                            len_bytes[1];
    util::Bytes payload(len);
    if (len > 0 && !ReadAll(payload.data(), len)) return std::nullopt;
    return payload;
  }

 private:
  bool ReadAll(std::uint8_t* out, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::recv(fd_, out + off, len - off, 0);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  int fd_ = -1;
  bool connected_ = false;
};

TEST(EventLoop, DispatchesAndWakes) {
  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  int fired = 0;
  ASSERT_TRUE(loop.Add(fds[0], EPOLLIN, [&](std::uint32_t) { ++fired; }).ok());

  // Nothing readable: a zero-timeout poll dispatches nothing.
  loop.PollOnce(0);
  EXPECT_EQ(fired, 0);

  const char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  loop.PollOnce(0);
  EXPECT_EQ(fired, 1);

  // Removal: further readiness is not dispatched.
  char drain;
  ASSERT_EQ(::read(fds[0], &drain, 1), 1);
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  loop.Remove(fds[0]);
  loop.PollOnce(0);
  EXPECT_EQ(fired, 1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, StopWakesABlockedRun) {
  EpollLoop loop;
  ASSERT_TRUE(loop.ok());
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::atomic<bool> entered{false};
  ASSERT_TRUE(loop.Add(fds[0], EPOLLIN,
                       [&](std::uint32_t) {
                         char c;
                         (void)::read(fds[0], &c, 1);
                         entered.store(true);
                       })
                  .ok());
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  std::thread runner([&] { loop.Run(); });
  // Wait until Run() is demonstrably inside its loop (it dispatched the
  // pipe), then Stop must wake the blocked epoll_wait via the eventfd.
  while (!entered.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.Stop();
  runner.join();  // hangs (and times out the test) if the wake is broken
  ::close(fds[0]);
  ::close(fds[1]);
}

// The whole wire corpus, served over real sockets, must be byte-identical
// to the simulator path running the same AuthServer configuration.
TEST(NetParity, UdpMatchesSimulatorByteForByte) {
  const zone::SnapshotPtr snapshot = TestSnapshot({2019, 6, 7});
  FrontendOptions options;
  SnapshotSource source(snapshot);
  DnsFrontend frontend(source, options);
  ASSERT_TRUE(frontend.Start().ok());

  // Reference: same configuration, simulated transport, no answer cache.
  sim::Simulator sim;
  sim::Network simnet(sim, 9);
  rootsrv::AuthServer reference(&simnet, snapshot, ReferenceOptions(options));
  std::optional<util::Bytes> captured;
  const sim::NodeId sim_client = simnet.AddNode(
      [&](const sim::Datagram& d) { captured = d.payload; });
  auto reference_answer =
      [&](const util::Bytes& payload) -> std::optional<util::Bytes> {
    captured.reset();
    simnet.Send(sim_client, reference.node(), payload);
    sim.Run();
    return captured;
  };

  // Replay-shaped corpus: priming, apex DNSSEC material, delegations valid
  // and bogus at each EDNS tier, flag variants, the >512 referral without
  // EDNS (TC), protocol violations, and garbage.
  std::vector<util::Bytes> corpus;
  corpus.push_back(dns::EncodeMessage(WithOpt(
      dns::MakeQuery(0x100, Name(), RRType::kNS), 1232)));  // priming
  corpus.push_back(dns::EncodeMessage(WithOpt(
      dns::MakeQuery(0x101, Name(), RRType::kDNSKEY), 4096)));
  corpus.push_back(dns::EncodeMessage(dns::MakeQuery(0x102, Name(),
                                                     RRType::kSOA)));
  int id = 0x200;
  for (const char* tld : {"com.", "net.", "org."}) {
    for (const RRType type : {RRType::kNS, RRType::kDS, RRType::kA}) {
      corpus.push_back(dns::EncodeMessage(dns::MakeQuery(
          static_cast<std::uint16_t>(id++), N(std::string("www.") + tld),
          type)));
      for (const std::uint16_t payload : {512, 1232, 4096}) {
        corpus.push_back(dns::EncodeMessage(WithOpt(
            dns::MakeQuery(static_cast<std::uint16_t>(id++), N(tld), type),
            payload)));
      }
    }
  }
  corpus.push_back(dns::EncodeMessage(dns::MakeQuery(
      0x300, N("www.no-such-tld-zz."), RRType::kA)));  // NXDOMAIN
  corpus.push_back(dns::EncodeMessage(WithOpt(
      dns::MakeQuery(0x301, N("WWW.COM."), RRType::kA), 1232)));  // case echo
  auto rd_query = dns::MakeQuery(0x302, N("www.com."), RRType::kA);
  rd_query.header.rd = true;
  corpus.push_back(dns::EncodeMessage(rd_query));
  corpus.push_back(dns::EncodeMessage(dns::MakeQuery(
      0x303, N("www.bigtld."), RRType::kA)));  // >512, no EDNS: TC
  corpus.push_back(dns::EncodeMessage(dns::MakeQuery(
      0x304, Name(), RRType::kAXFR)));  // AXFR over UDP: REFUSED
  auto chaos = dns::MakeQuery(0x305, N("version.bind."), RRType::kTXT);
  chaos.questions.front().rrclass = dns::RRClass::kCH;
  corpus.push_back(dns::EncodeMessage(chaos));
  auto two_questions = dns::MakeQuery(0x306, N("a.com."), RRType::kA);
  two_questions.questions.push_back({N("b.com."), RRType::kA,
                                     dns::RRClass::kIN});
  corpus.push_back(dns::EncodeMessage(two_questions));
  // Undecodable garbage with a readable header: FORMERR comes back.
  util::Bytes garbage(24, 0x41);
  garbage[0] = 0x13;
  garbage[1] = 0x37;
  garbage[2] = 0x00;  // qr clear
  corpus.push_back(garbage);
  // Headerless runt and a response-flagged query: both silently dropped.
  corpus.push_back(util::Bytes{1, 2, 3});
  auto qr_set = dns::MakeQuery(0x307, N("www.com."), RRType::kA);
  qr_set.header.qr = true;
  corpus.push_back(dns::EncodeMessage(qr_set));

  UdpClient client(frontend.udp_port());
  std::size_t answered = 0;
  std::size_t silent = 0;
  bool saw_tc = false;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto expected = reference_answer(corpus[i]);
    client.Send(corpus[i]);
    if (expected.has_value()) {
      const auto got = client.Recv(3000);
      ASSERT_TRUE(got.has_value()) << "corpus item " << i;
      EXPECT_EQ(*got, *expected) << "corpus item " << i;
      if (got->size() > 2 && ((*got)[2] & 0x02)) saw_tc = true;
      ++answered;
    } else {
      EXPECT_FALSE(client.Recv(150).has_value()) << "corpus item " << i;
      ++silent;
    }
  }
  EXPECT_EQ(silent, 2u);
  EXPECT_GT(answered, 30u);
  EXPECT_TRUE(saw_tc);  // the no-EDNS bigtld referral must have truncated
  frontend.Stop();
}

TEST(NetParity, TcpMatchesDirectAnswerWire) {
  const zone::SnapshotPtr snapshot = TestSnapshot({2019, 6, 7});
  FrontendOptions options;
  SnapshotSource source(snapshot);
  DnsFrontend frontend(source, options);
  ASSERT_TRUE(frontend.Start().ok());

  rootsrv::AuthServer reference(nullptr, snapshot,
                                ReferenceOptions(options));

  TcpClient client(frontend.tcp_port());
  ASSERT_TRUE(client.connected());
  const std::vector<dns::Message> corpus = {
      WithOpt(dns::MakeQuery(1, Name(), RRType::kNS), 1232),
      dns::MakeQuery(2, Name(), RRType::kDNSKEY),
      dns::MakeQuery(3, N("www.bigtld."), RRType::kA),  // big: no TC on TCP
      dns::MakeQuery(4, N("www.no-such-tld-zz."), RRType::kA),
  };
  for (const auto& query : corpus) {
    const auto expected =
        reference.AnswerWire(query, rootsrv::Channel::kTcp);
    client.SendFrame(dns::EncodeMessage(query));
    const auto got = client.RecvFrame();
    ASSERT_TRUE(got.has_value()) << query.header.id;
    EXPECT_EQ(*got, expected) << query.header.id;
    EXPECT_FALSE(got->size() > 2 && ((*got)[2] & 0x02));  // never TC
  }
  // Undecodable garbage over TCP draws the same FORMERR as over UDP.
  util::Bytes garbage(24, 0x41);
  garbage[0] = 0x13;
  garbage[1] = 0x37;
  garbage[2] = 0x00;
  client.SendFrame(garbage);
  const auto formerr = client.RecvFrame();
  ASSERT_TRUE(formerr.has_value());
  auto decoded = dns::DecodeMessage(*formerr);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.rcode, dns::RCode::kFormErr);
  EXPECT_EQ(decoded->header.id, 0x1337);
  frontend.Stop();
}

TEST(NetParity, AxfrTransfersTheExactZone) {
  const zone::SnapshotPtr snapshot = TestSnapshot({2019, 6, 7});
  SnapshotSource source(snapshot);
  DnsFrontend frontend(source, {});
  ASSERT_TRUE(frontend.Start().ok());

  auto fetched = FetchZoneTcp("127.0.0.1", frontend.tcp_port(), {});
  ASSERT_TRUE(fetched.ok()) << fetched.error().message();
  ASSERT_TRUE(*fetched);
  EXPECT_TRUE((*fetched)->SameContent(*snapshot));

  // Probing with the current serial reports "up to date" (null snapshot).
  const auto soa = (*fetched)->soa();
  ASSERT_TRUE(soa.has_value());
  AxfrFetchOptions probe;
  probe.have_serial = std::get<dns::SoaData>(soa->rdatas.front()).serial;
  auto up_to_date = FetchZoneTcp("127.0.0.1", frontend.tcp_port(), probe);
  ASSERT_TRUE(up_to_date.ok());
  EXPECT_EQ(*up_to_date, nullptr);
  frontend.Stop();
}

TEST(NetParity, SnapshotSwapBecomesVisible) {
  const zone::SnapshotPtr day1 = TestSnapshot({2019, 6, 7});
  const zone::SnapshotPtr day2 = TestSnapshot({2019, 6, 8});
  SnapshotSource source(day1);
  DnsFrontend frontend(source, {});
  ASSERT_TRUE(frontend.Start().ok());

  auto serial_of = [](const util::Bytes& wire) -> std::uint32_t {
    auto decoded = dns::DecodeMessage(wire);
    if (!decoded.ok() || decoded->answers.empty()) return 0;
    return std::get<dns::SoaData>(decoded->answers.front().rdata).serial;
  };
  UdpClient client(frontend.udp_port());
  client.Send(dns::EncodeMessage(dns::MakeQuery(1, Name(), RRType::kSOA)));
  auto before = client.Recv(3000);
  ASSERT_TRUE(before.has_value());
  const std::uint32_t serial1 = serial_of(*before);
  ASSERT_NE(serial1, 0u);

  source.Publish(day2);
  // Workers poll the generation between epoll batches; give them a few
  // round trips to pick it up.
  std::uint32_t serial2 = serial1;
  for (int attempt = 0; attempt < 100 && serial2 == serial1; ++attempt) {
    client.Send(dns::EncodeMessage(dns::MakeQuery(
        static_cast<std::uint16_t>(2 + attempt), Name(), RRType::kSOA)));
    auto response = client.Recv(3000);
    ASSERT_TRUE(response.has_value());
    serial2 = serial_of(*response);
  }
  EXPECT_NE(serial2, serial1);
  frontend.Stop();
}

// Fast-lane fuzz parity: thousands of valid, mutated, and hostile datagrams
// against two identically configured frontends — fast lane on vs off. The
// contract is total equivalence: each datagram draws byte-identical
// responses or is silently dropped by both, and the pipeline/RRL counter
// deltas match exactly (the fast lane must charge the same counters the
// slow path would).
//
// Response-to-datagram matching: after each fuzz datagram a sentinel query
// with an id from a reserved range is sent, and the socket is drained until
// the sentinel's answer appears — anything that arrives first is the fuzz
// datagram's response. Segmentation offload is disabled on both frontends
// because the GSO flush sort may reorder responses within a batch, which
// would break this pairing.
TEST(FuzzParity, FastLaneMatchesSlowPathOnHostileCorpus) {
  const zone::SnapshotPtr snapshot = TestSnapshot({2019, 6, 7});

  FrontendOptions base;
  base.enable_tcp = false;
  // Plain datagrams, strict FIFO responses: the sentinel protocol below
  // depends on send-order delivery, which the GSO flush sort would break.
  base.segmentation_offload = false;
  // A real limiter that never trips: rrl_checked/admit accounting must still
  // advance identically on both paths.
  base.rrl = {.enabled = true, .rate = 1000000000, .burst = 0, .slip = 2,
              .buckets = 4096};
  FrontendOptions fast_options = base;
  fast_options.fast_lane = true;
  FrontendOptions slow_options = base;
  slow_options.fast_lane = false;

  SnapshotSource fast_source(snapshot);
  SnapshotSource slow_source(snapshot);
  DnsFrontend fast(fast_source, fast_options);
  DnsFrontend slow(slow_source, slow_options);
  ASSERT_TRUE(fast.Start().ok());
  ASSERT_TRUE(slow.Start().ok());

  // Sentinel: fixed valid query; ids live in 0xFF00+ which the corpus
  // generator never produces.
  std::uint16_t sentinel_id = 0xFF00;
  auto sentinel_wire = [&](std::uint16_t id) {
    return dns::EncodeMessage(dns::MakeQuery(id, N("www.com."), RRType::kA));
  };

  const std::vector<std::string> tlds = {"com.", "net.", "org.", "bigtld.",
                                         "no-such-tld-zz.", "a.", ""};
  const std::vector<RRType> types = {RRType::kA,  RRType::kNS,
                                     RRType::kDS, RRType::kDNSKEY,
                                     RRType::kSOA, RRType::kAXFR};
  util::Rng rng(0xF422);
  auto make_datagram = [&](std::uint16_t id) -> util::Bytes {
    const std::uint64_t shape = rng.Below(10);
    if (shape < 4) {  // valid query, maybe EDNS
      auto query = dns::MakeQuery(id, N(tlds[rng.Below(tlds.size())]),
                                  types[rng.Below(types.size())]);
      query.header.rd = rng.Below(2) == 0;
      if (rng.Below(2) == 0) {
        return dns::EncodeMessage(WithOpt(
            std::move(query),
            static_cast<std::uint16_t>(256 + rng.Below(4096))));
      }
      return dns::EncodeMessage(query);
    }
    if (shape < 7) {  // valid query with 1-3 random byte flips
      auto wire = dns::EncodeMessage(dns::MakeQuery(
          id, N("www." + tlds[rng.Below(3)]), types[rng.Below(types.size())]));
      const std::uint64_t flips = 1 + rng.Below(3);
      for (std::uint64_t f = 0; f < flips; ++f) {
        // Flip past the id so the response (if any) stays matchable.
        wire[2 + rng.Below(wire.size() - 2)] ^=
            static_cast<std::uint8_t>(1 + rng.Below(255));
      }
      return wire;
    }
    if (shape < 9) {  // structured protocol violations
      auto query = dns::MakeQuery(id, N("www.com."), RRType::kA);
      switch (rng.Below(5)) {
        case 0: query.header.qr = true; break;
        case 1: query.header.opcode = dns::Opcode::kNotify; break;
        case 2: query.questions.clear(); break;
        case 3: query.questions.push_back({N("b.com."), RRType::kA,
                                           dns::RRClass::kIN}); break;
        case 4: query.questions.front().rrclass = dns::RRClass::kCH; break;
      }
      util::Bytes wire = dns::EncodeMessage(query);
      if (rng.Below(3) == 0) wire.push_back(0x00);  // trailing junk
      return wire;
    }
    // Raw garbage, any length 0..63, id bytes forced when room allows.
    util::Bytes wire(rng.Below(64));
    for (auto& b : wire) b = static_cast<std::uint8_t>(rng.Below(256));
    if (wire.size() >= 2) {
      wire[0] = static_cast<std::uint8_t>(id >> 8);
      wire[1] = static_cast<std::uint8_t>(id);
    }
    return wire;
  };

  UdpClient fast_client(fast.udp_port());
  UdpClient slow_client(slow.udp_port());
  // One datagram through one server; returns its response (nullopt =
  // silently dropped), using the sentinel to bound the wait.
  auto probe = [&](UdpClient& client, const util::Bytes& datagram,
                   std::uint16_t sid) -> std::optional<util::Bytes> {
    const util::Bytes sentinel = sentinel_wire(sid);
    client.Send(datagram);
    client.Send(sentinel);
    std::optional<util::Bytes> answer;
    for (int rounds = 0; rounds < 4; ++rounds) {
      auto got = client.Recv(3000);
      if (!got.has_value()) break;  // lost sentinel: treat as silent
      if (got->size() >= 2 && (*got)[0] == sentinel[0] &&
          (*got)[1] == sentinel[1]) {
        return answer;
      }
      answer = std::move(got);
    }
    return answer;
  };

  constexpr int kCorpus = 2048;
  int answered = 0, silent = 0;
  for (int i = 0; i < kCorpus; ++i) {
    const auto id = static_cast<std::uint16_t>(i);  // < 0xFF00 always
    const util::Bytes datagram = make_datagram(id);
    const std::uint16_t sid = sentinel_id++;
    if (sentinel_id == 0) sentinel_id = 0xFF00;
    const auto from_fast = probe(fast_client, datagram, sid);
    const auto from_slow = probe(slow_client, datagram, sid);
    ASSERT_EQ(from_fast.has_value(), from_slow.has_value())
        << "corpus item " << i;
    if (from_fast.has_value()) {
      ASSERT_EQ(*from_fast, *from_slow) << "corpus item " << i;
      ++answered;
    } else {
      ++silent;
    }
  }
  EXPECT_GT(answered, kCorpus / 3);
  EXPECT_GT(silent, 0);

  fast.Stop();
  slow.Stop();

  // The lane must actually have engaged, and every per-stage counter the
  // two servers charged must agree — the fast lane's accounting is required
  // to be indistinguishable from the pipeline's.
  EXPECT_GT(fast.fast_lane_stats().hits, 0u);
  const rootsrv::PipelineStats fp = fast.pipeline_stats();
  const rootsrv::PipelineStats sp = slow.pipeline_stats();
  EXPECT_EQ(fp.screen_diverted, sp.screen_diverted);
  EXPECT_EQ(fp.rrl_checked, sp.rrl_checked);
  EXPECT_EQ(fp.rrl_dropped, sp.rrl_dropped);
  EXPECT_EQ(fp.rrl_slipped, sp.rrl_slipped);
  EXPECT_EQ(fp.cache_probes, sp.cache_probes);
  EXPECT_EQ(fp.cache_insertions, sp.cache_insertions);
  EXPECT_EQ(fp.cache_evictions, sp.cache_evictions);
  EXPECT_EQ(fp.snapshot_answers, sp.snapshot_answers);
  const rootsrv::AuthServerStats fs = fast.stats();
  const rootsrv::AuthServerStats ss = slow.stats();
  EXPECT_EQ(fs.queries, ss.queries);
  EXPECT_EQ(fs.malformed, ss.malformed);
  EXPECT_EQ(fs.refused, ss.refused);
  EXPECT_EQ(fs.truncated, ss.truncated);
  EXPECT_EQ(fs.edns_queries, ss.edns_queries);
  EXPECT_EQ(fs.cache_hits, ss.cache_hits);
  EXPECT_EQ(fs.bytes_in, ss.bytes_in);
  EXPECT_EQ(fs.bytes_out, ss.bytes_out);
  EXPECT_EQ(fast.rrl()->dropped(), slow.rrl()->dropped());
  EXPECT_EQ(fast.rrl()->slipped(), slow.rrl()->slipped());
}

TEST(NetParity, MultiWorkerReusePortServesEveryQuery) {
  const zone::SnapshotPtr snapshot = TestSnapshot({2019, 6, 7});
  SnapshotSource source(snapshot);
  FrontendOptions options;
  options.udp_workers = 2;
  options.enable_tcp = false;
  DnsFrontend frontend(source, options);
  ASSERT_TRUE(frontend.Start().ok());

  UdpClient client(frontend.udp_port());
  for (int i = 0; i < 200; ++i) {
    const auto query = dns::MakeQuery(static_cast<std::uint16_t>(i),
                                      N("www.com."), RRType::kA);
    client.Send(dns::EncodeMessage(query));
    const auto response = client.Recv(3000);
    ASSERT_TRUE(response.has_value()) << i;
    EXPECT_EQ((*response)[0], static_cast<std::uint8_t>(i >> 8)) << i;
    EXPECT_EQ((*response)[1], static_cast<std::uint8_t>(i & 0xFF)) << i;
  }
  frontend.Stop();
  EXPECT_EQ(frontend.stats().queries, 200u);
}

}  // namespace
}  // namespace rootless::net
