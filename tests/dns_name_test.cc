// Tests for DNS names: parsing, wire codec, compression decode, ordering.
#include <gtest/gtest.h>

#include "dns/name.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace rootless::dns {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::Bytes;

Name MustParse(std::string_view s) {
  auto n = Name::Parse(s);
  EXPECT_TRUE(n.ok()) << s << ": " << (n.ok() ? "" : n.error().message());
  return *n;
}

TEST(Name, ParseRoot) {
  EXPECT_TRUE(MustParse(".").is_root());
  EXPECT_TRUE(MustParse("").is_root());
  EXPECT_EQ(MustParse(".").ToString(), ".");
}

TEST(Name, ParseSimple) {
  const Name n = MustParse("www.example.com.");
  ASSERT_EQ(n.label_count(), 3u);
  EXPECT_EQ(n.labels()[0], "www");
  EXPECT_EQ(n.labels()[2], "com");
  EXPECT_EQ(n.ToString(), "www.example.com.");
}

TEST(Name, TrailingDotOptional) {
  EXPECT_EQ(MustParse("example.com"), MustParse("example.com."));
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(MustParse("WWW.Example.COM"), MustParse("www.example.com"));
  EXPECT_NE(MustParse("a.com"), MustParse("b.com"));
}

TEST(Name, HashIsCaseInsensitive) {
  EXPECT_EQ(MustParse("ORG").Hash(), MustParse("org").Hash());
}

TEST(Name, RejectsBadNames) {
  EXPECT_FALSE(Name::Parse("a..b").ok());
  EXPECT_FALSE(Name::Parse(".a").ok());
  // 64-byte label
  EXPECT_FALSE(Name::Parse(std::string(64, 'x') + ".com").ok());
  // Total > 255 bytes
  std::string long_name;
  for (int i = 0; i < 50; ++i) long_name += "abcdef.";
  EXPECT_FALSE(Name::Parse(long_name).ok());
}

TEST(Name, MaxLabelAccepted) {
  EXPECT_TRUE(Name::Parse(std::string(63, 'x') + ".com").ok());
}

TEST(Name, EscapesRoundTrip) {
  const Name n = MustParse("a\\.b.com");
  ASSERT_EQ(n.label_count(), 2u);
  EXPECT_EQ(n.labels()[0], "a.b");
  EXPECT_EQ(n.ToString(), "a\\.b.com.");
  EXPECT_EQ(MustParse(n.ToString()), n);
}

TEST(Name, DecimalEscape) {
  const Name n = MustParse("a\\032b.com");  // embedded space
  ASSERT_EQ(n.label_count(), 2u);
  EXPECT_EQ(n.labels()[0], "a b");
  EXPECT_EQ(MustParse(n.ToString()), n);
}

TEST(Name, Tld) {
  EXPECT_EQ(MustParse("www.example.COM").tld(), "com");
  EXPECT_EQ(MustParse(".").tld(), "");
}

TEST(Name, Parent) {
  EXPECT_EQ(MustParse("www.example.com").Parent(), MustParse("example.com"));
  EXPECT_TRUE(MustParse("com").Parent().is_root());
}

TEST(Name, Concat) {
  auto n = MustParse("www").Concat(MustParse("example.com"));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, MustParse("www.example.com"));
}

TEST(Name, IsSubdomainOf) {
  EXPECT_TRUE(MustParse("a.b.com").IsSubdomainOf(MustParse("com")));
  EXPECT_TRUE(MustParse("a.b.com").IsSubdomainOf(MustParse("B.COM")));
  EXPECT_TRUE(MustParse("a.b.com").IsSubdomainOf(Name()));
  EXPECT_TRUE(MustParse("com").IsSubdomainOf(MustParse("com")));
  EXPECT_FALSE(MustParse("com").IsSubdomainOf(MustParse("a.com")));
  EXPECT_FALSE(MustParse("xcom").IsSubdomainOf(MustParse("com")));
}

TEST(Name, WireRoundTrip) {
  const Name n = MustParse("a.root-servers.net");
  ByteWriter w;
  n.EncodeWire(w);
  EXPECT_EQ(w.size(), n.wire_length());
  ByteReader r(w.span());
  auto decoded = Name::DecodeWire(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, n);
  EXPECT_TRUE(r.at_end());
}

TEST(Name, WireRootIsSingleZero) {
  ByteWriter w;
  Name().EncodeWire(w);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.data()[0], 0);
}

TEST(Name, DecodeCompressedPointer) {
  // Build: "example.com" at offset 0, then "www" + pointer to offset 0.
  ByteWriter w;
  MustParse("example.com").EncodeWire(w);
  const std::size_t second = w.size();
  w.WriteU8(3);
  w.WriteString("www");
  w.WriteU16(0xC000);  // pointer to offset 0
  ByteReader r(w.span());
  ASSERT_TRUE(r.Seek(second));
  auto decoded = Name::DecodeWire(r);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(*decoded, MustParse("www.example.com"));
  EXPECT_TRUE(r.at_end());
}

TEST(Name, DecodeRejectsForwardPointer) {
  ByteWriter w;
  w.WriteU16(0xC002);  // points at itself/forward
  w.WriteU8(0);
  ByteReader r(w.span());
  EXPECT_FALSE(Name::DecodeWire(r).ok());
}

TEST(Name, DecodeRejectsPointerLoop) {
  // Two pointers pointing at each other cannot occur (forward check), but a
  // self-pointer at offset 0 is the classic loop case.
  Bytes wire = {0xC0, 0x00};
  ByteReader r(wire);
  EXPECT_FALSE(Name::DecodeWire(r).ok());
}

TEST(Name, DecodeRejectsTruncation) {
  Bytes wire = {5, 'a', 'b'};  // label claims 5 bytes, only 2 present
  ByteReader r(wire);
  EXPECT_FALSE(Name::DecodeWire(r).ok());
}

TEST(Name, DecodeRejectsReservedLabelType) {
  Bytes wire = {0x80, 0x01, 0x00};
  ByteReader r(wire);
  EXPECT_FALSE(Name::DecodeWire(r).ok());
}

TEST(Name, CanonicalWireLowercases) {
  const Name n = MustParse("WwW.CoM");
  const Bytes canon = n.CanonicalWire();
  const Bytes expected = {3, 'w', 'w', 'w', 3, 'c', 'o', 'm', 0};
  EXPECT_EQ(canon, expected);
}

TEST(Name, CanonicalOrdering) {
  // RFC 4034 §6.1 example ordering.
  const char* ordered[] = {".",       "example.",        "a.example.",
                           "yljkjljk.a.example.", "z.a.example.",
                           "zabc.a.example.",     "z.example."};
  for (int i = 0; i + 1 < 7; ++i) {
    const Name a = MustParse(ordered[i]);
    const Name b = MustParse(ordered[i + 1]);
    EXPECT_TRUE(a < b) << ordered[i] << " < " << ordered[i + 1];
    EXPECT_FALSE(b < a);
  }
}

TEST(Name, OrderingIsCaseInsensitive) {
  EXPECT_EQ(MustParse("A.com") <=> MustParse("a.COM"),
            std::weak_ordering::equivalent);
}

// Property test: random names round-trip through text and wire formats.
TEST(NameProperty, RandomRoundTrips) {
  util::Rng rng(2019);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> labels;
    const std::size_t count = 1 + rng.Below(5);
    for (std::size_t i = 0; i < count; ++i) {
      std::string label;
      const std::size_t len = 1 + rng.Below(12);
      for (std::size_t k = 0; k < len; ++k) {
        label.push_back(static_cast<char>(rng.Below(256)));
      }
      labels.push_back(std::move(label));
    }
    auto name = Name::FromLabels(labels);
    ASSERT_TRUE(name.ok());

    // Text round trip.
    auto reparsed = Name::Parse(name->ToString());
    ASSERT_TRUE(reparsed.ok()) << name->ToString();
    EXPECT_EQ(*reparsed, *name);

    // Wire round trip.
    ByteWriter w;
    name->EncodeWire(w);
    ByteReader r(w.span());
    auto decoded = Name::DecodeWire(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, *name);
  }
}

}  // namespace
}  // namespace rootless::dns
